"""Result containers and summary statistics for simulation runs."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class LatencyStats:
    """Streaming latency accumulator (per-miss service latency).

    Holds at most ``sample_cap`` samples via reservoir sampling (Vitter's
    Algorithm R), so percentile estimates stay unbiased over the whole
    run instead of reflecting only the warm-up-adjacent prefix.  The
    reservoir draws from ``sample_rng`` — a caller-provided seeded stream
    (DET001: no ambient entropy) — and falls back to plain first-N
    capping when no RNG is supplied, which keeps sub-cap runs exact
    either way.
    """

    count: int = 0
    total: int = 0
    maximum: int = 0
    samples: List[int] = field(default_factory=list)
    sample_cap: int = 100_000
    sample_rng: Optional[object] = None   # DeterministicRng or None

    def record(self, latency: int) -> None:
        self.count += 1
        self.total += latency
        self.maximum = max(self.maximum, latency)
        if len(self.samples) < self.sample_cap:
            self.samples.append(latency)
        elif self.sample_rng is not None:
            # Algorithm R: keep each of the n seen values with P = cap/n.
            slot = self.sample_rng.randrange(self.count)
            if slot < self.sample_cap:
                self.samples[slot] = latency

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> int:
        """Nearest-rank percentile: the ceil(fraction * n)-th smallest.

        The textbook nearest-rank definition — ``int(fraction * n)`` as an
        index overshoots by one rank for every non-boundary fraction (for
        three samples it reports the *second* smallest as p50's neighbour
        p34, and the maximum as p67).
        """
        if not self.samples:
            return 0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        ordered = sorted(self.samples)
        rank = math.ceil(fraction * len(ordered))
        return ordered[max(0, rank - 1)]

    def summary(self) -> Dict[str, object]:
        """The SLO quantile ladder as one JSON-friendly dict.

        One sort serves every quantile (``percentile`` re-sorts per call),
        so per-tenant SLO reports stay cheap even at large sample counts.
        """
        if not self.samples:
            return {"count": self.count, "mean": 0.0, "max": 0,
                    "p50": 0, "p95": 0, "p99": 0, "p999": 0}
        ordered = sorted(self.samples)
        size = len(ordered)

        def rank(fraction: float) -> int:
            return ordered[max(0, math.ceil(fraction * size) - 1)]

        return {"count": self.count, "mean": self.mean,
                "max": self.maximum, "p50": rank(0.50), "p95": rank(0.95),
                "p99": rank(0.99), "p999": rank(0.999)}


@dataclass
class RunResult:
    """Everything one simulation run produced."""

    design: str
    workload: str
    execution_cycles: int
    miss_count: int
    accessoram_count: int
    llc_hit_rate: float
    miss_latency: LatencyStats
    #: per-channel DRAM event counters (main channels then SDIMM-internal)
    channel_counters: List[Dict[str, int]]
    #: counters from SDIMM-internal channels only
    on_dimm_counters: List[Dict[str, int]]
    #: main-channel bus traffic (SDIMM designs) in line-equivalents
    main_bus_lines: int
    probe_commands: int
    drain_accesses: int
    #: rank state residency per channel for the energy model
    rank_residencies: List[Dict[str, int]] = field(default_factory=list)
    #: exclusive per-phase cycle attribution of the measured window
    #: (repro.obs.metrics.phase_breakdown); empty without a tracer
    phase_cycles: Dict[str, int] = field(default_factory=dict)
    extras: Dict[str, float] = field(default_factory=dict)
    #: structured terminal-event records (integrity faults, overflows)
    #: when the run completed degraded instead of raising; empty for a
    #: clean run.  Each record carries at least ``kind`` and ``detail``.
    failures: List[Dict[str, object]] = field(default_factory=list)
    #: tumbling cycle-window snapshots (repro.obs.timeseries) when the
    #: run asked for them via ``window_cycles``; empty otherwise.  Each
    #: entry is one WindowSnapshot.as_dict() — folding them in order
    #: reproduces the run's cumulative metrics registry exactly.
    windows: List[Dict[str, object]] = field(default_factory=list)

    @property
    def completed_clean(self) -> bool:
        return not self.failures

    @property
    def cycles_per_miss(self) -> float:
        return (self.execution_cycles / self.miss_count
                if self.miss_count else 0.0)

    @property
    def accessorams_per_miss(self) -> float:
        return (self.accessoram_count / self.miss_count
                if self.miss_count else 0.0)

    def speedup_over(self, baseline: "RunResult") -> float:
        """How much faster this run is than ``baseline`` (>1 = faster)."""
        if self.execution_cycles == 0:
            return float("inf")
        return baseline.execution_cycles / self.execution_cycles

    def normalized_time(self, baseline: "RunResult") -> float:
        """Execution time normalized to ``baseline`` (<1 = faster)."""
        if baseline.execution_cycles == 0:
            return float("inf")
        return self.execution_cycles / baseline.execution_cycles

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary (for tooling and result archives)."""
        return {
            "design": self.design,
            "workload": self.workload,
            "execution_cycles": self.execution_cycles,
            "miss_count": self.miss_count,
            "accessoram_count": self.accessoram_count,
            "accessorams_per_miss": self.accessorams_per_miss,
            "llc_hit_rate": self.llc_hit_rate,
            "mean_miss_latency": self.miss_latency.mean,
            "p95_miss_latency": self.miss_latency.percentile(0.95),
            "main_bus_lines": self.main_bus_lines,
            "probe_commands": self.probe_commands,
            "drain_accesses": self.drain_accesses,
            "channel_counters": self.channel_counters,
            "phase_cycles": dict(sorted(self.phase_cycles.items())),
            "failures": [dict(record) for record in self.failures],
        }


def failure_record_from_exception(error: BaseException) -> Dict[str, object]:
    """Flatten a detection exception into a JSON-friendly failure record.

    Picks up the structured fields the integrity/overflow exceptions carry
    (``index``, ``expected_counter``, ``bucket``, ``way``, ``occupancy``,
    ``capacity``, plus their ``kind`` discriminator as ``fault_kind``) so
    ``RunResult.failures`` preserves everything a traceback would have
    shown, minus the crash.
    """
    record: Dict[str, object] = {
        "kind": type(error).__name__,
        "detail": str(error),
    }
    for attr in ("index", "expected_counter", "bucket", "way",
                 "occupancy", "capacity", "site", "sdimm", "attempts"):
        value = getattr(error, attr, None)
        if value is not None:
            record[attr] = value
    discriminator = getattr(error, "kind", None)
    if isinstance(discriminator, str):
        record["fault_kind"] = discriminator
    return record


def geometric_mean(values: List[float]) -> float:
    """Geometric mean, the standard aggregate for normalized times."""
    if not values:
        raise ValueError("need at least one value")
    if any(value <= 0 for value in values):
        raise ValueError("geometric mean requires positive values")
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))
