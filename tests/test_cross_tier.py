"""Cross-tier consistency: the functional and timing tiers must agree on
the protocol's observable structure, since they share no protocol code.

If the functional Independent protocol sends K link messages per access,
the timing backend must reserve K bus transfers per accessORAM; if the
functional path touches B buckets, the timing path must schedule the
same number of DRAM lines.  Divergence here means one tier drifted from
the paper's protocol.
"""

import pytest

from repro.config import DesignPoint, table2_config
from repro.core.commands import SdimmCommand
from repro.core.independent import IndependentProtocol
from repro.core.split import SplitProtocol
from repro.sim.events import EventQueue
from repro.sim.system import build_backend, run_trace_file
from repro.workloads.trace import TraceRecord, save_trace


class TestIndependentMessageCounts:
    def test_blocks_per_access_match(self):
        """Functional: ACCESS + FETCH_RESULT + N APPENDs carry blocks.
        Timing: the same count of bus block reservations per accessORAM."""
        sdimms = 2
        functional = IndependentProtocol(global_levels=8,
                                         sdimm_count=sdimms,
                                         block_bytes=16,
                                         stash_capacity=200,
                                         drain_probability=0.0,
                                         record_link=True)
        accesses = 12
        for address in range(accesses):
            functional.read(address)
        block_messages = sum(
            1 for event in functional.link.events
            if event.command in (SdimmCommand.ACCESS,
                                 SdimmCommand.FETCH_RESULT,
                                 SdimmCommand.APPEND) and
            event.payload_bytes > 0)
        functional_per_access = block_messages / accesses

        events = EventQueue()
        backend = build_backend(table2_config(DesignPoint.INDEP_2,
                                              channels=1), events)
        for index in range(40):
            backend.submit(index << 12, 0, False)
        events.run()
        timing_blocks = sum(bus.block_transfers for bus in backend.buses)
        timing_per_access = timing_blocks / backend.counters.accessorams

        assert functional_per_access == timing_per_access == 2 + sdimms

    def test_path_bucket_counts_match(self):
        """Functional buffers and timing devices walk same-length paths."""
        functional = IndependentProtocol(global_levels=10, sdimm_count=2,
                                         block_bytes=16,
                                         stash_capacity=200,
                                         drain_probability=0.0,
                                         record_trace=True)
        functional.read(1)
        touched = [sdimm for sdimm in functional.sdimms
                   if sdimm.oram.trace][0]
        functional_buckets = len(touched.oram.trace) // 2  # read + write

        config = table2_config(DesignPoint.INDEP_2, channels=1)
        backend = build_backend(config)
        device = backend.devices[0]
        # same formula: local levels minus cached levels
        expected_dram_buckets = (device.geometry.levels -
                                 device.skip_levels)
        # the functional tier has no on-chip cache: full local depth
        assert functional_buckets == functional.sdimms[0].oram.geometry.levels
        assert device.dram_path_lines == \
            expected_dram_buckets * config.oram.lines_per_bucket


class TestSplitMessageStructure:
    def test_metadata_volume_matches(self):
        """Functional: one metadata slice per bucket per way.  Timing: the
        same per-bucket metadata line count on the buses."""
        levels = 8
        functional = SplitProtocol(levels=levels, ways=2, block_bytes=16,
                                   stash_capacity=200, record_link=True)
        functional.read(1)
        metadata_messages = sum(1 for event in functional.link.events
                                if event.command is None)
        assert metadata_messages == levels * 2  # one slice per way/bucket

        config = table2_config(DesignPoint.SPLIT_2, channels=1)
        backend = build_backend(config)
        group = backend.group
        # the timing model ships ceil(buckets/ways) lines per member bus:
        # together one metadata line per bucket (rounded up per member)
        import math
        per_member = math.ceil(group._path_buckets / group.ways)
        assert per_member * group.ways >= group._path_buckets


class TestTraceFileReplay:
    def test_saved_trace_replays(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        records = [TraceRecord(20, index * 7, index % 3 == 0)
                   for index in range(400)]
        save_trace(records, path)
        config = table2_config(DesignPoint.NONSECURE, channels=1)
        result = run_trace_file(config, path, mlp=4)
        assert result.miss_count > 0
        assert result.workload == path

    def test_replay_deterministic(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        save_trace([TraceRecord(10, index, False) for index in range(200)],
                   path)
        config = table2_config(DesignPoint.FREECURSIVE, channels=1)
        first = run_trace_file(config, path)
        second = run_trace_file(config, path)
        assert first.execution_cycles == second.execution_cycles

    def test_warmup_bounds_checked(self, tmp_path):
        path = str(tmp_path / "trace.txt")
        save_trace([TraceRecord(0, 1, False)], path)
        config = table2_config(DesignPoint.NONSECURE, channels=1)
        with pytest.raises(ValueError):
            run_trace_file(config, path, warmup_records=5)
