"""Regression tests for the ISSUE-10 transfer-queue bugfix sweep.

Each test here failed before its fix landed:

* ``wasted_drains`` — a drain-lottery win on an empty queue spends a
  dummy ``accessORAM`` in the caller; pre-fix the spend left no trace in
  any counter.
* ``measured_utilization`` — pre-fix the only utilization the queue
  reported was the *configured* rho from ``drain_probability``, which
  silently lies once a controller makes *p* time-varying.
* push-order determinism — pre-fix the drain lottery was skipped for an
  overflowed arrival, desynchronizing the named RNG stream between a run
  that overflowed and its analytic replay.
"""

import pytest

from repro.analysis.queueing import drain_utilization
from repro.core.transfer_queue import TransferQueue, TransferQueueOverflow
from repro.oram.bucket import Block
from repro.utils.rng import DeterministicRng


def make_queue(capacity=8, p=0.0, seed=1):
    return TransferQueue(capacity, p, DeterministicRng(seed, "tq"))


def block(address, leaf=0):
    return Block(address, leaf, bytes(16))


class TestWastedDrainAccounting:
    def test_empty_drain_counts_wasted(self):
        """The dummy accessORAM spent on an empty queue must be visible."""
        queue = make_queue()
        assert queue.service(via_drain=True) is None
        assert queue.wasted_drains == 1
        assert queue.drain_services == 0

    def test_empty_vacancy_counts_idle(self):
        queue = make_queue()
        assert queue.service(via_drain=False) is None
        assert queue.idle_vacancies == 1
        assert queue.vacancy_services == 0

    def test_successful_services_untouched(self):
        queue = make_queue()
        queue.push(block(1))
        queue.push(block(2))
        queue.service(via_drain=True)
        queue.service(via_drain=False)
        assert queue.wasted_drains == 0
        assert queue.idle_vacancies == 0
        assert queue.drain_services == 1
        assert queue.vacancy_services == 1

    def test_counters_dict_carries_the_new_fields(self):
        queue = make_queue()
        queue.service(via_drain=True)
        queue.service(via_drain=False)
        counters = queue.counters_dict()
        assert counters["wasted_drains"] == 1
        assert counters["idle_vacancies"] == 1
        assert counters["occupancy"] == 0


class TestMeasuredUtilization:
    def test_no_opportunities_reports_none(self):
        """No measurement yet: do not invent one from the configured p."""
        assert make_queue(p=0.3).measured_utilization() is None

    def test_busy_fraction_of_opportunities(self):
        queue = make_queue(capacity=8, p=0.0)
        queue.push(block(1))
        queue.push(block(2))
        queue.service(via_drain=True)    # found work
        queue.service(via_drain=False)   # found work
        queue.service(via_drain=True)    # empty: wasted
        queue.service(via_drain=False)   # empty: idle
        assert queue.measured_utilization() == pytest.approx(0.5)

    def test_configured_estimate_lies_under_time_varying_p(self):
        """The regression: an adapted run must not report the stale
        configured rho as its measurement.

        Drive the queue busy under one p, then re-plan p mid-run.  The
        configured estimate jumps to the new set-point and forgets the
        run's history; the measured estimator keeps describing what was
        observed.  Pre-fix only the configured number existed.
        """
        queue = make_queue(capacity=8, p=0.05)
        for index in range(4):
            queue.push(block(index))
            queue.service(via_drain=True)
        before = queue.measured_utilization()
        assert before == pytest.approx(1.0)  # every opportunity found work

        queue.set_drain_probability(0.75)    # the controller re-plans
        assert queue.utilization_estimate() == pytest.approx(
            drain_utilization(0.75))
        # the configured estimate changed with no new observations; the
        # measured one did not — they are different quantities
        assert queue.measured_utilization() == before
        assert queue.measured_utilization() != pytest.approx(
            queue.utilization_estimate())

    def test_setter_validates_range(self):
        queue = make_queue()
        with pytest.raises(ValueError):
            queue.set_drain_probability(1.5)
        with pytest.raises(ValueError):
            queue.set_drain_probability(-0.1)


class TestOverflowPreservesLotteryStream:
    def test_rng_stream_advances_once_per_arrival(self):
        """A run that overflowed and its analytic replay must stay on the
        same named RNG stream.

        Both queues share a seed; the small one bounces arrivals the big
        one absorbs.  After the same arrival count the underlying streams
        must have advanced identically — pre-fix the overflowed queue
        skipped the lottery draw for every bounced arrival, so the next
        draw diverged.
        """
        overflowing = TransferQueue(1, 0.5, DeterministicRng(7, "tq"))
        replay = TransferQueue(64, 0.5, DeterministicRng(7, "tq"))
        for index in range(12):
            try:
                overflowing.push(block(index))
            except TransferQueueOverflow:
                pass
            replay.push(block(index))
        assert overflowing.overflows > 0
        # the queues saw the same arrivals, so the streams must align:
        # the next raw draw from each is identical
        assert overflowing._rng.random() == replay._rng.random()

    def test_bounced_arrival_draw_is_discarded(self):
        """A lottery win on a bounced arrival drains nothing — the block
        never entered the queue."""
        queue = TransferQueue(1, 1.0, DeterministicRng(3, "tq"))
        assert queue.push(block(0)) is True
        with pytest.raises(TransferQueueOverflow):
            queue.push(block(1))
        # the bounce consumed a draw but triggered no service; the queue
        # still holds exactly the first block
        assert len(queue) == 1
        assert queue.drain_services == 0

    def test_no_overflow_runs_unchanged(self):
        """Draw-before-check is invisible to runs that never overflow:
        one draw per successful arrival, exactly as before the fix."""
        queue = make_queue(capacity=100, p=0.3, seed=5)
        triggers = 0
        for index in range(5000):
            triggers += queue.push(block(index))
            queue.service(via_drain=False)
        assert queue.overflows == 0
        assert 0.25 < triggers / 5000 < 0.35
