"""Tests for DRAM tree layouts (subtree packing and low-power per-rank)."""

import pytest

from repro.config import DramOrganization, OramConfig
from repro.oram.layout import (
    LowPowerLayout,
    TreeLayout,
    subtree_packed_index,
)
from repro.oram.tree import TreeGeometry


def small_oram():
    return OramConfig(levels=8, cached_levels=2)


class TestSubtreePacking:
    def test_bijective(self):
        tree = TreeGeometry(9)
        indices = {subtree_packed_index(tree, bucket, 3)
                   for bucket in range(tree.bucket_count)}
        assert indices == set(range(tree.bucket_count))

    def test_subtree_contiguous(self):
        """All buckets of one subtree occupy a contiguous index range."""
        tree = TreeGeometry(8)
        subtree_levels = 4
        # subtree rooted at level 4, position 3: levels 4-7, prefix 3
        members = [bucket for bucket in range(tree.bucket_count)
                   if tree.level_of(bucket) >= 4 and
                   tree.position_of(bucket) >> (tree.level_of(bucket) - 4) == 3]
        packed = sorted(subtree_packed_index(tree, bucket, subtree_levels)
                        for bucket in members)
        assert packed == list(range(packed[0], packed[0] + len(packed)))

    def test_path_confined_to_one_window_per_band(self):
        """Within each 4-level band, a path's buckets share one subtree's
        contiguous 15-bucket window — the row-buffer locality the layout
        exists to provide."""
        tree = TreeGeometry(8)
        subtree_size = (1 << 4) - 1
        for leaf in (0, 37, tree.leaf_count - 1):
            path = tree.path(leaf)
            for band_start in (0, 4):
                packed = [subtree_packed_index(tree, bucket, 4)
                          for bucket in path[band_start:band_start + 4]]
                assert max(packed) - min(packed) < subtree_size

    def test_root_is_index_zero(self):
        tree = TreeGeometry(8)
        assert subtree_packed_index(tree, 0, 4) == 0


class TestTreeLayout:
    def make_layout(self, channels=2):
        geometry = TreeGeometry(8)
        return TreeLayout(geometry, small_oram(), DramOrganization(),
                          channels=channels)

    def test_bucket_has_five_lines(self):
        layout = self.make_layout()
        assert len(layout.bucket_lines(0)) == 5

    def test_lines_striped_across_channels(self):
        layout = self.make_layout(channels=2)
        channels = [channel for channel, _ in layout.bucket_lines(0)]
        assert channels == [0, 1, 0, 1, 0]

    def test_path_lines_count(self):
        layout = self.make_layout()
        lines = layout.path_lines(leaf=5, skip_levels=2)
        assert len(lines) == (8 - 2) * 5

    def test_distinct_buckets_distinct_lines(self):
        layout = self.make_layout(channels=1)
        lines_a = {(c, d.rank, d.bank, d.row, d.column)
                   for c, d in layout.bucket_lines(3)}
        lines_b = {(c, d.rank, d.bank, d.row, d.column)
                   for c, d in layout.bucket_lines(4)}
        assert not lines_a & lines_b

    def test_subtree_rows_shared(self):
        """Buckets inside one packing band land in one row (row-hit wins)."""
        layout = self.make_layout(channels=1)
        tree = layout.geometry
        path = tree.path(0)[:4]  # the first band of a 4-level packing
        rows = {(d.rank, d.bank, d.row)
                for bucket in path
                for _, d in layout.bucket_lines(bucket)}
        assert len(rows) == 1

    def test_rejects_zero_channels(self):
        with pytest.raises(ValueError):
            TreeLayout(TreeGeometry(8), small_oram(), DramOrganization(),
                       channels=0)


class TestLowPowerLayout:
    def make_layout(self):
        geometry = TreeGeometry(10)
        return LowPowerLayout(geometry, small_oram(), DramOrganization(),
                              ranks=4)

    def test_top_levels_in_sram(self):
        layout = self.make_layout()
        # levels 0 and 1 (log2(4) = 2 levels) are SRAM-resident
        assert layout.bucket_lines(0) is None
        assert layout.bucket_lines(1) is None
        assert layout.bucket_lines(2) is None
        assert layout.bucket_lines(3) is not None

    def test_rank_of_leaf_partitions(self):
        layout = self.make_layout()
        leaf_count = layout.geometry.leaf_count
        per_rank = leaf_count // 4
        for leaf in range(leaf_count):
            assert layout.rank_of_leaf(leaf) == leaf // per_rank

    def test_path_confined_to_one_rank(self):
        """The low-power property: every DRAM line of a path shares a rank."""
        layout = self.make_layout()
        for leaf in (0, 100, 255, 511):
            lines = layout.path_lines(leaf)
            ranks = {line.rank for line in lines}
            assert len(ranks) == 1
            assert ranks == {layout.rank_of_leaf(leaf)}

    def test_path_lines_skip_sram_levels(self):
        layout = self.make_layout()
        lines = layout.path_lines(0)
        # 10 levels, 2 in SRAM => 8 buckets * 5 lines
        assert len(lines) == 8 * 5

    def test_distinct_subtrees_distinct_ranks(self):
        layout = self.make_layout()
        first = layout.path_lines(0)
        last = layout.path_lines(layout.geometry.leaf_count - 1)
        assert {line.rank for line in first} != {line.rank for line in last}

    def test_too_shallow_tree_rejected(self):
        with pytest.raises(ValueError):
            LowPowerLayout(TreeGeometry(2), small_oram(),
                           DramOrganization(), ranks=4)

    def test_buckets_disjoint_within_rank(self):
        layout = self.make_layout()
        tree = layout.geometry
        seen = set()
        for bucket in range(3, 40):
            located = layout.bucket_lines(bucket)
            if located is None:
                continue
            for line in located:
                key = (line.rank, line.bank, line.row, line.column)
                assert key not in seen
                seen.add(key)
