"""Tests for the FR-FCFS scheduler policy."""

import pytest

from repro.config import DramOrganization, DramTiming, SchedulerConfig
from repro.dram.address import DecodedAddress
from repro.dram.channel import Channel, MemoryRequest
from repro.dram.scheduler import FrFcfsScheduler


def make_scheduler(**config_kwargs):
    channel = Channel(DramTiming(), DramOrganization(), scale=1)
    return FrFcfsScheduler(channel, SchedulerConfig(**config_kwargs))


def request(row=0, column=0, bank=0, rank=0, is_write=False, arrival=0):
    return MemoryRequest(
        address=DecodedAddress(rank=rank, bank=bank, row=row, column=column),
        is_write=is_write,
        arrival_time=arrival,
    )


class TestFrFcfs:
    def test_empty_queue_raises(self):
        scheduler = make_scheduler()
        with pytest.raises(LookupError):
            scheduler.issue_next(0)

    def test_row_hit_preferred_over_older_conflict(self):
        scheduler = make_scheduler()
        opener = request(row=0, column=0)
        scheduler.enqueue(opener)
        scheduler.issue_next(0)
        # older request conflicts, younger hits the open row
        conflicting = request(row=1, column=0, arrival=1)
        hitting = request(row=0, column=1, arrival=2)
        scheduler.enqueue(conflicting)
        scheduler.enqueue(hitting)
        issued, _ = scheduler.issue_next(10)
        assert issued is hitting

    def test_fcfs_when_no_hits(self):
        scheduler = make_scheduler()
        older = request(row=1, arrival=0)
        younger = request(row=2, arrival=5)
        scheduler.enqueue(older)
        scheduler.enqueue(younger)
        issued, _ = scheduler.issue_next(10)
        assert issued is older

    def test_reads_prioritized_over_writes(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(row=1, is_write=True))
        scheduler.enqueue(request(row=2, is_write=False, arrival=5))
        issued, _ = scheduler.issue_next(10)
        assert not issued.is_write

    def test_write_drain_triggers_at_high_watermark(self):
        scheduler = make_scheduler(write_queue_capacity=64,
                                   write_drain_high=4, write_drain_low=1)
        for index in range(5):
            scheduler.enqueue(request(row=index, is_write=True))
        scheduler.enqueue(request(row=100, is_write=False))
        issued, _ = scheduler.issue_next(0)
        assert issued.is_write
        assert scheduler.stats_drain_episodes == 1

    def test_drain_continues_until_low_watermark(self):
        scheduler = make_scheduler(write_queue_capacity=64,
                                   write_drain_high=4, write_drain_low=2)
        for index in range(5):
            scheduler.enqueue(request(row=index, is_write=True))
        scheduler.enqueue(request(row=100, is_write=False))
        issued_types = []
        now = 0
        for _ in range(4):
            issued, timing = scheduler.issue_next(now)
            issued_types.append(issued.is_write)
            now = timing.data_end
        # drains writes from 5 down to 2, then the read goes
        assert issued_types == [True, True, True, False]

    def test_writes_serviced_when_no_reads(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(is_write=True))
        issued, _ = scheduler.issue_next(0)
        assert issued.is_write

    def test_completion_time_recorded(self):
        scheduler = make_scheduler()
        queued = request()
        scheduler.enqueue(queued)
        _, timing = scheduler.issue_next(0)
        assert queued.completion_time == timing.data_end

    def test_pending_counts_both_queues(self):
        scheduler = make_scheduler()
        scheduler.enqueue(request(is_write=True))
        scheduler.enqueue(request(is_write=False))
        assert scheduler.pending == 2
        assert scheduler.has_work()

    def test_write_queue_full_flag(self):
        scheduler = make_scheduler(write_queue_capacity=2,
                                   write_drain_high=2, write_drain_low=1)
        scheduler.enqueue(request(is_write=True))
        assert not scheduler.write_queue_full
        scheduler.enqueue(request(is_write=True))
        assert scheduler.write_queue_full
