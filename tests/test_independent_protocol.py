"""Functional tests for the Independent ORAM protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commands import SdimmCommand
from repro.core.independent import IndependentProtocol
from repro.oram.path_oram import Op


def make_protocol(levels=8, sdimms=2, seed=2018, p=0.1, **kwargs):
    return IndependentProtocol(
        global_levels=levels, sdimm_count=sdimms, block_bytes=16,
        stash_capacity=200, drain_probability=p, seed=seed, **kwargs)


def payload(value):
    return value.to_bytes(4, "little") * 4


class TestCorrectness:
    def test_read_after_write(self):
        protocol = make_protocol()
        protocol.write(5, payload(42))
        assert protocol.read(5) == payload(42)

    def test_unwritten_reads_zero(self):
        protocol = make_protocol()
        assert protocol.read(9) == bytes(16)

    def test_survives_many_migrations(self):
        """The acid test: blocks hop between SDIMMs and remain readable."""
        protocol = make_protocol(levels=8, sdimms=4, seed=3)
        protocol.write(77, payload(1))
        for round_number in range(2, 60):
            assert protocol.read(77) == payload(round_number - 1)
            protocol.write(77, payload(round_number))

    def test_many_blocks(self):
        protocol = make_protocol(sdimms=4)
        for address in range(40):
            protocol.write(address, payload(address + 500))
        for address in range(40):
            assert protocol.read(address) == payload(address + 500)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 255)),
                    min_size=1, max_size=40))
    def test_matches_reference_dict(self, operations):
        protocol = make_protocol(levels=6)
        reference = {}
        for address, value in operations:
            protocol.write(address, payload(value))
            reference[address] = payload(value)
        for address, expected in reference.items():
            assert protocol.read(address) == expected

    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            make_protocol().access(1, Op.WRITE)


class TestDistribution:
    def test_blocks_spread_over_sdimms(self):
        protocol = make_protocol(levels=10, sdimms=4, seed=5)
        for address in range(200):
            protocol.write(address, payload(address))
        owners = [protocol.locate(address) for address in range(200)]
        counts = [owners.count(index) for index in range(4)]
        assert min(counts) > 20  # roughly uniform

    def test_access_goes_to_owner(self):
        protocol = make_protocol(record_link=True)
        protocol.write(1, payload(1))
        owner_before = protocol.locate(1)
        protocol.link.clear()
        protocol.read(1)
        access_events = [event for event in protocol.link.events
                         if event.command is SdimmCommand.ACCESS]
        assert len(access_events) == 1
        assert access_events[0].sdimm == owner_before

    def test_drains_happen_under_migration_load(self):
        protocol = make_protocol(levels=8, sdimms=2, p=0.5, seed=7)
        for address in range(150):
            protocol.write(address % 40, payload(address))
        assert protocol.total_drain_accesses > 0

    def test_queue_stays_small_with_drain(self):
        protocol = make_protocol(levels=8, sdimms=2, p=0.3, seed=11)
        for address in range(300):
            protocol.write(address % 50, payload(address))
        for sdimm in protocol.sdimms:
            assert sdimm.queue.peak_occupancy < 32


class TestObliviousness:
    def _shapes(self, operations, seed=2018):
        protocol = make_protocol(levels=8, sdimms=2, seed=seed, p=0.0,
                                 record_link=True)
        for address, op, value in operations:
            if op is Op.WRITE:
                protocol.access(address, op, payload(value))
            else:
                protocol.access(address, op)
        return protocol.link.shapes()

    def test_link_shape_independent_of_addresses(self):
        hot = [(1, Op.READ, 0)] * 15
        scan = [(address, Op.READ, 0) for address in range(15)]
        assert self._shapes(hot) == self._shapes(scan)

    def test_link_shape_independent_of_operation(self):
        reads = [(index, Op.READ, 0) for index in range(15)]
        writes = [(index, Op.WRITE, index) for index in range(15)]
        assert self._shapes(reads) == self._shapes(writes)

    def test_append_broadcast_to_every_sdimm(self):
        """Step 6: every access APPENDs to all SDIMMs, dummies included."""
        protocol = make_protocol(sdimms=4, record_link=True, p=0.0)
        protocol.read(3)
        appends = [event for event in protocol.link.events
                   if event.command is SdimmCommand.APPEND]
        assert sorted(event.sdimm for event in appends) == [0, 1, 2, 3]

    def test_access_always_carries_block(self):
        """ACCESS is always followed by one block of data, even for reads,
        so the operation type is hidden."""
        protocol = make_protocol(record_link=True)
        protocol.read(3)
        access = [event for event in protocol.link.events
                  if event.command is SdimmCommand.ACCESS][0]
        assert access.payload_bytes == 16

    def test_local_bus_trace_is_paths(self):
        """Each SDIMM's internal bus carries whole-path reads/writes only."""
        protocol = IndependentProtocol(
            global_levels=8, sdimm_count=2, block_bytes=16,
            stash_capacity=200, drain_probability=0.0, seed=1,
            record_trace=True)
        protocol.read(3)
        touched = [sdimm for sdimm in protocol.sdimms
                   if sdimm.oram.trace]
        assert len(touched) == 1
        local_levels = touched[0].oram.geometry.levels
        kinds = [event.kind for event in touched[0].oram.trace]
        assert kinds == ["read"] * local_levels + ["write"] * local_levels
