"""Property test: fast core == reference core under adversarial mixes.

The macro-replay core must be byte-identical to the reference event core
not just on clean straight-line runs but when fast-path-eligible
accesses interleave with everything that perturbs shared state: faulted
campaigns (:mod:`repro.faults`), out-of-order stall windows, tumbling
window boundaries cutting through bursts, and parked low-power ranks
forcing mid-run fallbacks.

Each case seeds a shuffled interleaving of simulation runs and fault
campaigns, executes the whole sequence in one interpreter (so
process-global state — delta tables, memo caches — carries across the
interleaving exactly as in production), and asserts the full observable
digest is identical with ``REPRO_REFERENCE_CORE=1``.
"""

import json
import os
import subprocess
import sys

import pytest

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")

#: Runs a seed-shuffled interleaving and prints a canonical digest.
DRIVER = r"""
import hashlib, json, sys

from repro.config import DesignPoint, small_config
from repro.faults.campaign import CampaignSpec, run_campaign
from repro.obs.tracer import CollectingTracer
from repro.sim.system import run_simulation
from repro.utils.rng import DeterministicRng

seed = int(sys.argv[1])

SIM_OPS = [
    ("sim", "freecursive", "mcf", "in-order", 700),
    ("sim", "freecursive", "gromacs", "out-of-order", 0),
    ("sim", "indep-2", "mcf", "in-order", 900),
    ("sim", "split-2", "mcf", "out-of-order", 700),
]
CAMPAIGN_OPS = [
    ("campaign", dict(design="independent", accesses=24, levels=5,
                      bit_flips=2, buffer_stalls=2, seed=seed)),
    ("campaign", dict(design="split", accesses=24, levels=5,
                      link_drops=1, link_delays=2, seed=seed + 1)),
]

ops = SIM_OPS + CAMPAIGN_OPS
rng = DeterministicRng(seed, "fastpath-differential")
order = list(range(len(ops)))
for i in range(len(order) - 1, 0, -1):  # Fisher-Yates with our own RNG
    j = rng.randint(0, i)
    order[i], order[j] = order[j], order[i]

digest = []
for index in order:
    op = ops[index]
    if op[0] == "sim":
        _, design, workload, policy, window_cycles = op
        tracer = CollectingTracer()
        result = run_simulation(small_config(DesignPoint(design)),
                                workload, trace_length=300,
                                trace_seed=seed,
                                window_policy=policy, tracer=tracer,
                                window_cycles=window_cycles)
        events = hashlib.sha256(json.dumps(
            [(e.kind, e.name, e.category, e.lane, e.start, e.duration,
              sorted(e.args.items())) for e in tracer.events],
            sort_keys=True).encode()).hexdigest()
        digest.append({
            "op": op[:5],
            "execution_cycles": result.execution_cycles,
            "phase_cycles": result.phase_cycles,
            "channel_counters": result.channel_counters,
            "rank_residencies": result.rank_residencies,
            "windows": result.windows,
            "events_sha": events,
        })
    else:
        outcome = run_campaign(CampaignSpec(**op[1]))
        digest.append({"op": "campaign", "outcome": outcome.to_dict()})
print(json.dumps(digest, sort_keys=True))
"""


def run_interleaving(seed: int, env_extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("REPRO_REFERENCE_CORE", None)
    env.pop("REPRO_DISABLE_MEMO", None)
    env.pop("REPRO_DISABLE_FASTPATH", None)
    env.update(env_extra)
    proc = subprocess.run([sys.executable, "-c", DRIVER, str(seed)],
                          env=env, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout)


class TestInterleavedDifferential:
    @pytest.mark.parametrize("seed", [11, 23, 47])
    def test_fast_core_matches_reference_core(self, seed):
        fast = run_interleaving(seed, {})
        reference = run_interleaving(
            seed, {"REPRO_REFERENCE_CORE": "1", "REPRO_DISABLE_MEMO": "1"})
        assert fast == reference

    def test_fastpath_disabled_is_also_identical(self):
        fast = run_interleaving(11, {})
        disabled = run_interleaving(11, {"REPRO_DISABLE_FASTPATH": "1"})
        assert fast == disabled
