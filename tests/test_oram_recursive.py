"""Tests for the recursive PosMap hierarchy and the PLB front end."""

import pytest

from repro.config import OramConfig
from repro.oram.plb import PlbFrontend
from repro.oram.recursive import RecursiveOram
from repro.utils.rng import DeterministicRng


def make_recursive(data_blocks=256, **kwargs):
    defaults = dict(block_bytes=64, blocks_per_bucket=4, stash_capacity=200,
                    entries_per_block=16, onchip_entries=4)
    defaults.update(kwargs)
    return RecursiveOram(data_blocks=data_blocks,
                         rng=DeterministicRng(2, "rec"), **defaults)


class TestRecursiveOram:
    def test_builds_expected_depth(self):
        # 256 blocks / 16 entries = 16 posmap blocks > 4 on-chip
        # 16 / 16 = 1 <= 4 on-chip  => 2 posmap levels
        oram = make_recursive(256)
        assert oram.posmap_levels == 2

    def test_single_level_when_small(self):
        oram = make_recursive(4)
        assert oram.posmap_levels == 0

    def test_respects_max_levels(self):
        oram = make_recursive(16**4, max_posmap_levels=2)
        assert oram.posmap_levels == 2

    def test_read_after_write(self):
        oram = make_recursive()
        oram.write(100, b"Z" * 64)
        assert oram.read(100) == b"Z" * 64

    def test_unwritten_reads_zero(self):
        oram = make_recursive()
        assert oram.read(7) == bytes(64)

    def test_many_blocks(self):
        oram = make_recursive(256)
        for address in range(0, 256, 7):
            oram.write(address, address.to_bytes(2, "little") * 32)
        for address in range(0, 256, 7):
            assert oram.read(address) == address.to_bytes(2, "little") * 32

    def test_overwrite_through_recursion(self):
        oram = make_recursive()
        for round_number in range(5):
            oram.write(33, bytes([round_number]) * 64)
            assert oram.read(33) == bytes([round_number]) * 64

    def test_each_access_touches_all_levels(self):
        oram = make_recursive(256)
        before = [level.access_count for level in oram.orams]
        oram.read(12)
        after = [level.access_count for level in oram.orams]
        assert all(b + 1 == a for b, a in zip(before, after))

    def test_posmap_orams_shrink(self):
        oram = make_recursive(4096)
        level_sizes = [level.geometry.levels for level in oram.orams]
        assert level_sizes == sorted(level_sizes, reverse=True)

    def test_rejects_oversized_entries(self):
        with pytest.raises(ValueError):
            make_recursive(entries_per_block=32, block_bytes=64)


def plb_config(**kwargs):
    defaults = dict(levels=20, cached_levels=3, recursive_posmaps=5,
                    plb_bytes=4096, plb_assoc=4, posmap_entries_per_block=16)
    defaults.update(kwargs)
    return OramConfig(**defaults)


class TestPlbFrontend:
    def test_cold_miss_walks_full_chain(self):
        frontend = PlbFrontend(plb_config())
        accesses = [access for access in frontend.translate(0)
                    if not access.is_writeback]
        assert [access.oram_level for access in accesses] == \
            [5, 4, 3, 2, 1, 0]

    def test_warm_hit_short_chain(self):
        frontend = PlbFrontend(plb_config())
        frontend.translate(0)
        accesses = frontend.translate(1)  # same posmap block at level 1
        assert [access.oram_level for access in accesses] == [0]

    def test_partial_hit(self):
        frontend = PlbFrontend(plb_config())
        frontend.translate(0)
        # address 16 shares the level-2 block of address 0 (16 >> 4 = 1
        # differs, 16 >> 8 = 0 matches)
        accesses = [access for access in frontend.translate(16)
                    if not access.is_writeback]
        assert [access.oram_level for access in accesses] == [1, 0]

    def test_disabled_plb_always_full_chain(self):
        frontend = PlbFrontend(plb_config(), enabled=False)
        for address in (0, 0, 0):
            accesses = frontend.translate(address)
            assert len(accesses) == 6
        assert frontend.accesses_per_request == 6.0

    def test_posmap_block_addresses(self):
        frontend = PlbFrontend(plb_config())
        accesses = frontend.translate(0x12345)
        data = [a for a in accesses if a.oram_level == 0][0]
        assert data.block_address == 0x12345
        level1 = [a for a in accesses if a.oram_level == 1][0]
        assert level1.block_address == 0x1234

    def test_dirty_evictions_emit_writebacks(self):
        config = plb_config(plb_bytes=512, plb_assoc=2)  # tiny: 8 lines
        frontend = PlbFrontend(config)
        for address in range(0, 1 << 20, 1 << 14):
            frontend.translate(address)
        assert frontend.writebacks > 0
        # write-backs were reported as accesses too
        assert frontend.accesses > frontend.requests

    def test_hot_loop_approaches_one_access_per_miss(self):
        frontend = PlbFrontend(plb_config())
        for _ in range(50):
            for address in range(16):
                frontend.translate(address)
        assert frontend.accesses_per_request < 1.1

    def test_accesses_per_request_between_one_and_chain(self):
        frontend = PlbFrontend(plb_config())
        rng = DeterministicRng(4, "plb")
        for _ in range(500):
            frontend.translate(rng.randrange(1 << 16))
        assert 1.0 <= frontend.accesses_per_request <= 7.0

    def test_rejects_too_many_levels(self):
        with pytest.raises(ValueError):
            PlbFrontend(plb_config(recursive_posmaps=8))
