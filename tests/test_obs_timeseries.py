"""Tumbling cycle windows: exactness, flush discipline, determinism."""

import json

import pytest

from repro.config import DesignPoint, small_config
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (WINDOW_SCHEMA, WindowedTracer,
                                  WindowSnapshot, fold_windows,
                                  windows_from_events, windows_to_dicts)
from repro.obs.tracer import CollectingTracer, Tracer
from repro.parallel.cache import RunCache
from repro.parallel.sweep import SweepPoint, run_sweep
from repro.sim.system import run_simulation


def _collect_events(trace_length=400, design=DesignPoint.FREECURSIVE):
    config = small_config(design)
    tracer = CollectingTracer()
    run_simulation(config, "mcf", trace_length=trace_length, tracer=tracer)
    return tracer.events


class TestSnapshot:
    def test_window_bounds(self):
        snapshot = WindowSnapshot(3, 500)
        assert (snapshot.start, snapshot.end) == (1500, 2000)
        as_dict = snapshot.as_dict()
        assert as_dict["schema"] == WINDOW_SCHEMA
        assert as_dict["metrics"] == MetricsRegistry().as_dict()

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedTracer(Tracer(), 0)
        with pytest.raises(ValueError):
            WindowedTracer(Tracer(), 100, lag_windows=-1)


class TestExactness:
    """Folding all windows back together == the cumulative registry."""

    def test_fold_reproduces_cumulative_registry(self):
        events = _collect_events()
        cumulative = MetricsRegistry().from_events(events)
        snapshots = windows_from_events(events, 1000)
        folded = fold_windows(windows_to_dicts(snapshots))
        cum = cumulative.as_dict()
        out = folded.as_dict()
        assert out["counters"] == cum["counters"]
        assert out["histograms"] == cum["histograms"]
        for name, gauge in cum["gauges"].items():
            assert out["gauges"][name]["min"] == gauge["min"]
            assert out["gauges"][name]["max"] == gauge["max"]
            assert out["gauges"][name]["samples"] == gauge["samples"]

    def test_every_event_lands_in_exactly_one_window(self):
        events = _collect_events()
        snapshots = windows_from_events(events, 777)  # awkward width
        span_total = sum(
            sum(h["count"] for h in s.registry.as_dict()
                ["histograms"].values())
            for s in snapshots)
        assert span_total == sum(1 for e in events if e.kind == "span")
        for snapshot, nxt in zip(snapshots, snapshots[1:]):
            assert snapshot.index < nxt.index

    def test_window_keyed_on_start_cycle(self):
        tracer = WindowedTracer(Tracer(), 100)
        # span straddles the boundary; its start cycle owns it
        tracer.span("straddle", "bus", "lane", 95, 160)
        tracer.instant("tick", "bus", "lane", 100)
        snapshots = tracer.close()
        assert [s.index for s in snapshots] == [0, 1]
        assert snapshots[0].registry.as_dict()["histograms"][
            "bus/straddle"]["count"] == 1
        assert snapshots[1].registry.as_dict()["counters"][
            "bus/tick"] == 1


class TestFlushing:
    def test_flush_fires_in_order_after_lag(self):
        flushed = []
        tracer = WindowedTracer(Tracer(), 100,
                                on_flush=lambda s: flushed.append(s.index),
                                lag_windows=1)
        for start in (10, 120):
            tracer.instant("tick", "bus", "lane", start)
        assert flushed == []          # high-water 120: window 0 not ripe yet
        tracer.instant("tick", "bus", "lane", 250)
        assert flushed == [0]         # stream is a full lag window past it
        tracer.instant("tick", "bus", "lane", 460)
        assert flushed == [0, 1, 2]   # ripe windows flush in index order
        snapshots = tracer.close()
        assert [s.index for s in snapshots] == [0, 1, 2, 4]

    def test_late_events_counted_and_still_folded(self):
        tracer = WindowedTracer(Tracer(), 100, on_flush=lambda s: None,
                                lag_windows=0)
        tracer.instant("tick", "bus", "lane", 10)
        tracer.instant("tick", "bus", "lane", 250)   # flushes window 0
        tracer.span("late", "bus", "lane", 20, 240)  # lands in window 0
        assert tracer.late_events == 1
        snapshots = tracer.close()
        assert snapshots[0].registry.as_dict()["histograms"][
            "bus/late"]["count"] == 1

    def test_closed_tracer_rejects_events(self):
        tracer = WindowedTracer(Tracer(), 100)
        tracer.close()
        with pytest.raises(RuntimeError):
            tracer.instant("tick", "bus", "lane", 0)

    def test_forwards_to_inner(self):
        inner = CollectingTracer()
        tracer = WindowedTracer(inner, 100)
        tracer.span("s", "bus", "lane", 0, 10)
        tracer.counter("c", "bus", "lane", 5, 7)
        assert len(inner.events) == 2
        assert tracer.events is inner.events


class TestDeterminism:
    """RunResult.windows byte-identical serial vs pool vs cached replay."""

    POINTS = [SweepPoint(DesignPoint.FREECURSIVE, "mcf", trace_length=300,
                         window_cycles=1000),
              SweepPoint(DesignPoint.INDEP_2, "gromacs", trace_length=300,
                         window_cycles=1000)]

    @staticmethod
    def _window_bytes(outcome):
        return json.dumps([entry.result.windows
                           for entry in outcome.results], sort_keys=True)

    def test_serial_vs_pool_byte_identical(self):
        serial = run_sweep(self.POINTS, jobs=1, cache=None)
        pooled = run_sweep(self.POINTS, jobs=2, cache=None)
        assert self._window_bytes(serial) == self._window_bytes(pooled)
        assert all(entry.result.windows for entry in serial.results)

    def test_cached_replay_byte_identical(self, tmp_path):
        cache = RunCache(str(tmp_path / "cache"))
        first = run_sweep(self.POINTS, jobs=1, cache=cache)
        replay = run_sweep(self.POINTS, jobs=1, cache=cache)
        assert all(entry.from_cache for entry in replay.results)
        assert self._window_bytes(first) == self._window_bytes(replay)

    def test_cache_key_separates_window_widths(self, tmp_path):
        cache = RunCache(str(tmp_path / "cache"))
        narrow = SweepPoint(DesignPoint.FREECURSIVE, "mcf",
                            trace_length=300, window_cycles=500)
        run_sweep([self.POINTS[0]], jobs=1, cache=cache)
        second = run_sweep([narrow], jobs=1, cache=cache)
        assert not second.results[0].from_cache

    def test_outcome_fold_windows_matches_direct_event_fold(self):
        outcome = run_sweep(self.POINTS, jobs=1, cache=None)
        folded = outcome.fold_windows().as_dict()
        # the same points, traced directly, folded point-then-event order
        from repro.obs.metrics import fold_metrics_dict
        direct = MetricsRegistry()
        for point in self.POINTS:
            tracer = CollectingTracer()
            run_simulation(point.system_config(), point.workload,
                           trace_length=point.trace_length, tracer=tracer)
            fold_metrics_dict(
                direct, MetricsRegistry().from_events(tracer.events)
                .as_dict())
        expected = direct.as_dict()
        assert folded["counters"] == expected["counters"]
        assert folded["histograms"] == expected["histograms"]
