"""Tests for the co-resident VM experiment (the paper's claim III-A.3)."""

import pytest

from repro.config import DesignPoint
from repro.sim.coresident import CoResidentExperiment, compare_designs


class TestCoResident:
    def test_runs_for_every_design(self):
        for design in (DesignPoint.NONSECURE, DesignPoint.FREECURSIVE,
                       DesignPoint.INDEP_2, DesignPoint.SPLIT_2):
            result = CoResidentExperiment(design).run(oram_requests=40,
                                                      vm_requests=40)
            assert result.vm_latency.count == 40
            assert result.mean_latency > 0

    def test_freecursive_load_crushes_vm_latency(self):
        """Under Freecursive the VM shares the bus with path bursts."""
        floor = CoResidentExperiment(DesignPoint.NONSECURE).run(
            oram_requests=40, vm_requests=60)
        loaded = CoResidentExperiment(DesignPoint.FREECURSIVE).run(
            oram_requests=40, vm_requests=60)
        assert loaded.mean_latency > 3 * floor.mean_latency

    def test_sdimm_protects_the_vm(self):
        """The paper's claim: an SDIMM 'does not negatively impact the
        bandwidth available to a co-resident VM'."""
        freecursive = CoResidentExperiment(DesignPoint.FREECURSIVE).run(
            oram_requests=40, vm_requests=60)
        independent = CoResidentExperiment(DesignPoint.INDEP_2).run(
            oram_requests=40, vm_requests=60)
        assert independent.mean_latency < 0.5 * freecursive.mean_latency

    def test_split_between_the_two(self):
        """Split puts metadata on the bus: more VM impact than INDEP,
        far less than Freecursive."""
        freecursive = CoResidentExperiment(DesignPoint.FREECURSIVE).run(
            oram_requests=40, vm_requests=60)
        split = CoResidentExperiment(DesignPoint.SPLIT_2).run(
            oram_requests=40, vm_requests=60)
        independent = CoResidentExperiment(DesignPoint.INDEP_2).run(
            oram_requests=40, vm_requests=60)
        assert independent.mean_latency <= split.mean_latency
        assert split.mean_latency < freecursive.mean_latency

    def test_compare_designs_helper(self):
        results = compare_designs(
            designs=(DesignPoint.NONSECURE, DesignPoint.INDEP_2))
        assert [result.design for result in results] == \
            ["nonsecure", "indep-2"]

    def test_oram_load_actually_ran(self):
        result = CoResidentExperiment(DesignPoint.FREECURSIVE).run(
            oram_requests=30, vm_requests=10)
        assert result.oram_accesses >= 30
