"""Tests for the bounded batching scheduler (repro.serve.scheduler)."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.oram.path_oram import Op
from repro.serve.loadgen import Request
from repro.serve.scheduler import AdmissionRejected, BatchingScheduler


class FakeProtocol:
    """Deterministic in-memory backend with the protocols' access seam."""

    BLOCK = 16

    def __init__(self):
        self.store = {}
        self.access_log = []

    def access(self, address, op, data=None):
        self.access_log.append((address, op))
        previous = self.store.get(address, bytes(self.BLOCK))
        if op is Op.WRITE:
            self.store[address] = data
        return previous


def read(arrival, sequence, address, tenant="t0"):
    return Request(arrival=arrival, tenant=tenant, sequence=sequence,
                   address=address, op=Op.READ)


def write(arrival, sequence, address, data, tenant="t0"):
    return Request(arrival=arrival, tenant=tenant, sequence=sequence,
                   address=address, op=Op.WRITE, data=data)


def run(requests, capacity=8, batch=4, **kwargs):
    scheduler = BatchingScheduler(FakeProtocol(), queue_capacity=capacity,
                                  batch_size=batch,
                                  fallback_access_ticks=10, **kwargs)
    return scheduler.run(requests)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BatchingScheduler(FakeProtocol(), queue_capacity=0)
        with pytest.raises(ValueError):
            BatchingScheduler(FakeProtocol(), queue_capacity=4,
                              batch_size=0)
        with pytest.raises(ValueError):
            BatchingScheduler(FakeProtocol(), queue_capacity=4,
                              ticks_per_link_event=0)


class TestEmptyAndTrivial:
    def test_empty_timeline(self):
        outcome = run([])
        assert outcome.offered == 0
        assert outcome.completions == []
        assert outcome.shed == []
        assert outcome.shed_rate == 0.0
        assert outcome.utilization == 0.0
        assert outcome.elapsed_ticks == 0

    def test_single_request_accounting(self):
        outcome = run([read(3, 0, 5)])
        assert outcome.admitted == 1
        assert len(outcome.completions) == 1
        completion = outcome.completions[0]
        assert completion.start == 3
        assert completion.finish == 13        # fallback cost 10
        assert completion.sojourn == 10
        assert outcome.busy_ticks == 10
        assert outcome.elapsed_ticks == 13


class TestBoundedAdmission:
    def burst(self, count):
        """``count`` same-tick arrivals: worst case for the queue bound."""
        return [read(0, sequence, sequence) for sequence in range(count)]

    def test_saturation_sheds_and_bounds_depth(self):
        capacity = 4
        outcome = run(self.burst(20), capacity=capacity, batch=1)
        assert outcome.peak_depth <= capacity
        # one request slips into service before the queue fills; the rest
        # of the same-tick burst is bounded by K
        assert outcome.admitted == capacity + 1
        assert len(outcome.shed) == 20 - outcome.admitted
        assert outcome.shed_rate == pytest.approx(15 / 20)
        # admitted requests all complete; nothing is silently dropped
        assert len(outcome.completions) == outcome.admitted

    def test_shed_records_are_structured(self):
        outcome = run(self.burst(6), capacity=2, batch=1)
        record = outcome.shed[0]
        assert isinstance(record, AdmissionRejected)
        assert record.reason == "queue-full"
        assert record.capacity == 2
        assert record.queue_depth == 2
        assert record.tenant == "t0"
        payload = record.to_dict()
        assert payload["sequence"] == record.sequence
        assert payload["arrival"] == 0

    def test_exact_fill_reaches_the_bound_without_shedding(self):
        """K queued requests is full-but-legal: depth == K, zero shed."""
        capacity = 4
        outcome = run(self.burst(capacity + 1), capacity=capacity, batch=1)
        assert outcome.shed == []
        assert outcome.peak_depth == capacity
        assert outcome.admitted == capacity + 1

    def test_first_shed_happens_exactly_at_the_bound(self):
        capacity = 4
        outcome = run(self.burst(capacity + 2), capacity=capacity, batch=1)
        assert len(outcome.shed) == 1
        record = outcome.shed[0]
        assert record.queue_depth == capacity
        assert record.capacity == capacity
        assert outcome.peak_depth == capacity

    def test_zero_completion_outcome_summarizes_safely(self):
        """Empty runs must render: every quantile key present, zeroed."""
        outcome = run([])
        summary = outcome.sojourn.summary()
        for key in ("count", "mean", "max", "p50", "p95", "p99", "p999"):
            assert summary[key] == 0
        assert outcome.per_tenant == {}

    def test_under_load_nothing_is_shed(self):
        # arrivals spaced wider than the 10-tick service time
        requests = [read(20 * i, i, i) for i in range(10)]
        outcome = run(requests, capacity=1, batch=1)
        assert outcome.shed == []
        assert outcome.peak_depth == 1
        assert outcome.utilization < 1.0


class TestCoalescing:
    def timeline(self):
        hot = 7
        payload = b"\xabJUMP-CUT".ljust(FakeProtocol.BLOCK, b"\x00")
        # The warmup request is served solo at tick 0 and occupies the
        # server until tick 10, so the tick-1 arrivals queue up and get
        # drained as a single batch.
        return [
            read(0, 0, 99),               # warmup, served alone
            read(1, 1, hot),
            read(1, 2, hot),              # duplicate: rides sequence 1
            write(1, 3, hot, payload),    # republishes fresh bytes
            read(1, 4, hot),              # must observe the write
            read(1, 5, 3),                # different address: own access
        ]

    def test_duplicate_reads_coalesce_within_batch(self):
        outcome = run(self.timeline(), batch=8, keep_read_bytes=True)
        assert outcome.coalesced == 2      # sequences 2 and 4
        assert outcome.accesses == 4       # warmup + hot read/write + addr 3
        by_key = dict(outcome.read_bytes)
        assert by_key[("t0", 1)] == by_key[("t0", 2)]
        assert by_key[("t0", 4)].startswith(b"\xabJUMP-CUT")

    def test_coalesced_bytes_match_uncoalesced_run(self):
        batched = run(self.timeline(), batch=8, keep_read_bytes=True)
        serial = run(self.timeline(), batch=1, keep_read_bytes=True)
        assert serial.coalesced == 0
        assert batched.read_bytes == serial.read_bytes

    def test_batching_reduces_service_time(self):
        batched = run(self.timeline(), batch=8)
        serial = run(self.timeline(), batch=1)
        assert batched.busy_ticks < serial.busy_ticks


class TestAccounting:
    def test_metrics_counters(self):
        metrics = MetricsRegistry()
        requests = [read(0, i, i % 2) for i in range(6)]
        scheduler = BatchingScheduler(FakeProtocol(), queue_capacity=4,
                                      batch_size=4, metrics=metrics,
                                      fallback_access_ticks=10)
        outcome = scheduler.run(requests)
        snapshot = metrics.as_dict()
        counters = snapshot["counters"]
        assert counters["serve/admitted"] == outcome.admitted
        assert counters["serve/shed"] == len(outcome.shed)
        assert counters["serve/accesses"] == outcome.accesses
        assert counters["serve/coalesced"] == outcome.coalesced
        depth = snapshot["gauges"]["serve/queue_depth"]
        assert depth["last"] == 0                   # fully drained
        assert depth["max"] == outcome.peak_depth

    def test_per_tenant_latency_split(self):
        requests = [read(0, 0, 1, tenant="a"), read(0, 0, 2, tenant="b"),
                    read(5, 1, 3, tenant="a")]
        outcome = run(requests, batch=1)
        assert set(outcome.per_tenant) == {"a", "b"}
        assert outcome.per_tenant["a"].count == 2
        assert outcome.per_tenant["b"].count == 1
        assert outcome.sojourn.count == 3

    def test_program_order_preserved_per_tenant(self):
        requests = [read(0, i, i) for i in range(12)]
        outcome = run(requests, capacity=16, batch=4)
        sequences = [c.request.sequence for c in outcome.completions]
        assert sequences == sorted(sequences)
