"""Content equality of the fastpath pattern producers vs the layouts.

:mod:`repro.fastpath.runs` re-derives the layouts' ``path_runs`` with
flat integer arithmetic; these tests pin that every produced run list is
*identical in content* to the layout's, across the real Table II
geometry (1 and 2 channels), the small test geometry, and the low-power
one-subtree-per-rank layout — for every skip level and a broad sample of
leaves.  Also covered: the :class:`PathPattern` metadata the access core
consumes (touched ranks, per-channel grouping with emission slots, the
Split slice shares) against first-principles recomputation.
"""

from dataclasses import replace

import pytest

from repro.config import DesignPoint, small_config, table2_config
from repro.fastpath.runs import FastLowPowerRuns, FastTreeRuns
from repro.oram.layout import LowPowerLayout, TreeLayout
from repro.oram.tree import TreeGeometry


def _sample_leaves(leaf_count):
    """Edge leaves plus a deterministic spread, unique and in range."""
    picks = {0, 1, 2, leaf_count - 1, leaf_count - 2, leaf_count // 2,
             leaf_count // 3}
    for bit in range(leaf_count.bit_length() - 1):
        picks.update({(1 << bit) - 1, 1 << bit, (1 << bit) + 1})
    step = max(1, leaf_count // 61)
    picks.update(range(0, leaf_count, step))
    return sorted(leaf for leaf in picks if 0 <= leaf < leaf_count)


def _layout_runs6(layout, leaf, skip):
    """TreeLayout.path_runs as (channel, rank, bank, row, column, count)."""
    return tuple((channel, address.rank, address.bank, address.row,
                  address.column, count)
                 for channel, address, count in layout.path_runs(leaf, skip))


def _lowpower_runs6(layout, leaf, skip):
    """LowPowerLayout.path_runs in the same 6-tuple form (channel 0)."""
    return tuple((0, address.rank, address.bank, address.row,
                  address.column, count)
                 for address, count in layout.path_runs(leaf, skip))


def _tree_cases():
    for label, config in (
            ("table2-1ch", table2_config(DesignPoint.FREECURSIVE,
                                         channels=1)),
            ("table2-2ch", table2_config(DesignPoint.FREECURSIVE,
                                         channels=2)),
            ("small", small_config(DesignPoint.FREECURSIVE))):
        geometry = TreeGeometry(config.oram.levels)
        layout = TreeLayout(geometry, config.oram, config.organization,
                            config.channels)
        organization = config.organization
        banks_per_group = (organization.banks_per_rank //
                           organization.bank_groups)
        yield label, config, geometry, layout, banks_per_group


TREE_CASES = list(_tree_cases())


@pytest.mark.parametrize("label,config,geometry,layout,banks_per_group",
                         TREE_CASES, ids=[case[0] for case in TREE_CASES])
class TestTreeRunsEquality:
    def test_runs_match_layout_everywhere(self, label, config, geometry,
                                          layout, banks_per_group):
        fast = FastTreeRuns(layout, banks_per_group)
        leaves = _sample_leaves(geometry.leaf_count)
        skips = sorted({0, 1, config.effective_cached_levels,
                        config.oram.levels - 1})
        checked = 0
        for skip in skips:
            for leaf in leaves:
                pattern = fast.pattern(leaf, skip)
                assert pattern.runs == _layout_runs6(layout, leaf, skip), \
                    f"{label}: leaf={leaf} skip={skip}"
                checked += 1
        assert checked >= len(leaves)

    def test_pattern_metadata_is_consistent(self, label, config, geometry,
                                            layout, banks_per_group):
        fast = FastTreeRuns(layout, banks_per_group)
        skip = config.effective_cached_levels
        for leaf in _sample_leaves(geometry.leaf_count)[:24]:
            pattern = fast.pattern(leaf, skip)
            runs = pattern.runs
            # touched ranks: exact set, one entry per (channel, rank)
            assert sorted(pattern.sig_ranks) == sorted(
                {(run[0], run[1]) for run in runs})
            # per-channel grouping covers every run exactly once, in order
            rebuilt = [None] * len(runs)
            for channel, part_runs, slots in pattern.per_channel:
                if slots is None:
                    assert len(pattern.per_channel) == 1
                    for index, run5 in enumerate(part_runs):
                        rebuilt[index] = (channel,) + run5
                else:
                    for slot, run5 in zip(slots, part_runs):
                        rebuilt[slot] = (channel,) + run5
            assert tuple(rebuilt) == runs
            # first-touch banks and touched groups
            assert sorted(pattern.sig_banks) == sorted(
                (ch, rank, bank,
                 next(run[3] for run in runs
                      if run[0] == ch and run[1] == rank and run[2] == bank))
                for ch, rank, bank in {(run[0], run[1], run[2])
                                       for run in runs})
            assert sorted(pattern.sig_groups) == sorted(
                {(run[0], run[1], run[2] // banks_per_group)
                 for run in runs})

    def test_patterns_are_memoized(self, label, config, geometry, layout,
                                   banks_per_group):
        fast = FastTreeRuns(layout, banks_per_group)
        first = fast.pattern(3, 0)
        assert fast.pattern(3, 0) is first


class TestSliceShares:
    def test_slices_match_sdimm_slice_runs(self):
        from repro.sim.backends import SdimmDevice

        label, config, geometry, layout, banks_per_group = TREE_CASES[0]
        fast = FastTreeRuns(layout, banks_per_group)
        pattern = fast.pattern(geometry.leaf_count // 3, 0)
        layout_runs = [(address, count) for _channel, address, count
                       in layout.path_runs(geometry.leaf_count // 3, 0)]
        for ways in (2, 4):
            shares = pattern.slices(ways)
            assert len(shares) == ways
            for way in range(ways):
                expected = tuple(
                    (address.rank, address.bank, address.row,
                     address.column, count)
                    for address, count in SdimmDevice.slice_runs(
                        layout_runs, way, ways))
                assert shares[way] == expected

    def test_slices_are_memoized(self):
        label, config, geometry, layout, banks_per_group = TREE_CASES[-1]
        fast = FastTreeRuns(layout, banks_per_group)
        pattern = fast.pattern(1, 0)
        assert pattern.slices(2) is pattern.slices(2)


class TestLowPowerRunsEquality:
    @pytest.fixture(scope="class")
    def case(self):
        config = table2_config(DesignPoint.INDEP_2, channels=1)
        organization = replace(config.organization, dimms_per_channel=1)
        levels = config.oram.levels - 3  # an SDIMM-local subtree
        geometry = TreeGeometry(levels)
        oram = replace(config.oram, levels=levels)
        layout = LowPowerLayout(geometry, oram, organization)
        banks_per_group = (organization.banks_per_rank //
                           organization.bank_groups)
        return geometry, layout, banks_per_group

    def test_runs_match_layout_everywhere(self, case):
        geometry, layout, banks_per_group = case
        fast = FastLowPowerRuns(layout, banks_per_group)
        skips = sorted({0, 1, layout.rank_levels, layout.rank_levels + 1,
                        geometry.levels - 1})
        for skip in skips:
            for leaf in _sample_leaves(geometry.leaf_count):
                pattern = fast.pattern(leaf, skip)
                assert pattern.runs == _lowpower_runs6(layout, leaf, skip), \
                    f"leaf={leaf} skip={skip}"

    def test_single_rank_invariant(self, case):
        geometry, layout, banks_per_group = case
        fast = FastLowPowerRuns(layout, banks_per_group)
        for leaf in _sample_leaves(geometry.leaf_count)[:32]:
            pattern = fast.pattern(leaf, 0)
            owner = layout.rank_of_leaf(leaf)
            assert pattern.sig_ranks == ((0, owner),)
            assert {run[1] for run in pattern.runs} == {owner}
