"""End-to-end serving benchmark tests: determinism, caching, the model."""

import pytest

from repro.analysis.queueing import mm1k_full_probability
from repro.parallel.cache import RunCache
from repro.serve.bench import (
    ServeSpec,
    generate_requests,
    run_serve,
    run_serve_sweep,
    serve_cache_key,
)
from repro.serve.slo import canonical_json, compare_with_model

SMALL = dict(levels=5, requests=64, capacity=16, batch=4, seed=2018)


def render(reports):
    """The exact bytes ``serve-bench --report`` writes."""
    return "[" + ",".join(canonical_json(report) for report in reports) + "]\n"


class TestServeSpec:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ServeSpec(design="mystery")
        with pytest.raises(ValueError):
            ServeSpec(rate=-1.0)
        with pytest.raises(ValueError):
            ServeSpec(capacity=0)
        with pytest.raises(ValueError):
            ServeSpec(tenants=0)

    def test_round_trips_through_dict(self):
        spec = ServeSpec(design="independent", rate=0.01, tenants=3,
                         profile="mcf", **SMALL)
        assert ServeSpec.from_dict(spec.to_dict()) == spec

    def test_address_limit_matches_tree(self):
        assert ServeSpec(levels=9).address_limit == 256

    def test_tenants_partition_load(self):
        spec = ServeSpec(rate=0.03, tenants=3, **SMALL)
        tenant_specs = spec.tenant_specs()
        assert len(tenant_specs) == 3
        assert sum(t.rate for t in tenant_specs) == pytest.approx(0.03)
        assert sum(t.requests for t in tenant_specs) == spec.requests
        requests = generate_requests(spec)
        assert {r.tenant for r in requests} == {"t0", "t1", "t2"}
        assert all(r.address < spec.address_limit for r in requests)


class TestRunServe:
    def test_zero_rate_is_an_empty_report(self):
        report = run_serve(ServeSpec(rate=0.0, **SMALL))
        assert report["totals"]["offered"] == 0
        assert report["totals"]["shed"] == 0
        assert report["queue"]["depth_bounded"] is True
        assert report["sojourn"]["aggregate"]["count"] == 0

    def test_same_spec_same_bytes(self):
        spec = ServeSpec(rate=0.01, write_fraction=0.5, **SMALL)
        assert canonical_json(run_serve(spec)) == \
            canonical_json(run_serve(spec))

    def test_underload_is_stable(self):
        report = run_serve(ServeSpec(rate=0.005, **SMALL))
        assert report["model"]["rho_offered"] < 1.0
        assert report["totals"]["shed"] == 0
        assert report["queue"]["depth_bounded"] is True
        assert report["sojourn"]["aggregate"]["count"] == \
            report["totals"]["completed"]

    def test_saturation_sheds_without_traceback(self):
        spec = ServeSpec(rate=0.5, requests=200, levels=5, capacity=8,
                         batch=1, seed=2018)
        report = run_serve(spec)
        assert report["model"]["rho_offered"] > 1.0
        assert report["totals"]["shed"] > 0
        assert report["queue"]["peak_depth"] <= spec.capacity
        assert report["queue"]["depth_bounded"] is True
        records = report["shed_records"]
        assert len(records) == report["totals"]["shed"]
        assert all(record["reason"] == "queue-full" for record in records)

    def test_overload_shed_tracks_mm1k_envelope(self):
        """Deep overload: shed rate approaches 1 - 1/rho for any service
        distribution, so the M/M/1/K reference must sit nearby."""
        spec = ServeSpec(rate=0.5, requests=400, levels=5, capacity=8,
                         batch=1, seed=2018)
        comparison = compare_with_model(run_serve(spec))
        assert comparison["rho"] > 1.0
        assert comparison["measured_shed_rate"] == pytest.approx(
            comparison["predicted_full_probability"], abs=0.15)
        assert comparison["predicted_full_probability"] == pytest.approx(
            mm1k_full_probability(comparison["rho"], spec.capacity))

    def test_zero_rate_render_and_comparison_survive(self):
        """A legitimately idle point renders and compares without error."""
        from repro.serve.slo import render_table

        report = run_serve(ServeSpec(rate=0.0, requests=0, **{
            key: value for key, value in SMALL.items()
            if key != "requests"}))
        table = render_table([report], title="idle")
        assert "idle" in table and "0.0000" in table
        comparison = compare_with_model(report)
        assert comparison["rho"] == 0.0
        assert comparison["measured_shed_rate"] == 0.0

    def test_compare_with_model_keeps_zero_rho_offered(self):
        """``rho_offered == 0.0`` is a measurement, not a missing field.

        Regression pin for the ``or``-fallback bug: a report with a
        legitimate zero offered rho must NOT silently swap in the
        measured utilization — only an absent field falls back.
        """
        zero = {"model": {"rho_offered": 0.0, "rho_measured": 0.7,
                          "mm1k_full_probability": 0.0, "shed_rate": 0.0}}
        assert compare_with_model(zero)["rho"] == 0.0
        absent = {"model": {"rho_measured": 0.7,
                            "mm1k_full_probability": 0.0,
                            "shed_rate": 0.0}}
        assert compare_with_model(absent)["rho"] == 0.7

    def test_coalescing_preserves_read_bytes(self):
        """Batched (coalescing) and serial (no coalescing) runs of the
        same hot-set stream return identical bytes to every read."""
        hot = dict(rate=0.05, levels=5, requests=96, capacity=64,
                   zipf_exponent=1.4, write_fraction=0.3, seed=2018)
        batched = run_serve(ServeSpec(batch=8, **hot), keep_read_bytes=True)
        serial = run_serve(ServeSpec(batch=1, **hot), keep_read_bytes=True)
        assert batched["totals"]["coalesced"] > 0
        assert serial["totals"]["coalesced"] == 0
        assert batched["_read_bytes"] == serial["_read_bytes"]
        # coalescing saved real protocol work
        assert batched["totals"]["accesses"] < serial["totals"]["accesses"]


class TestSweepDeterminism:
    def specs(self):
        return [ServeSpec(design=design, rate=rate, **SMALL)
                for design in ("independent", "split")
                for rate in (0.005, 0.02)]

    def test_jobs_one_vs_four_byte_identical(self):
        serial = run_serve_sweep(self.specs(), jobs=1)
        fanned = run_serve_sweep(self.specs(), jobs=4)
        assert render(serial) == render(fanned)

    def test_cached_replay_byte_identical(self, tmp_path):
        cache = RunCache(str(tmp_path / "serve-cache"))
        first = run_serve_sweep(self.specs(), jobs=2, cache=cache)
        misses = cache.stats.misses
        replay = run_serve_sweep(self.specs(), jobs=1, cache=cache)
        assert render(first) == render(replay)
        assert cache.stats.misses == misses      # replay was all hits
        assert cache.stats.hits >= len(self.specs())

    def test_cache_key_separates_specs(self):
        a, b = self.specs()[:2]
        fingerprint = "f" * 64
        assert serve_cache_key(a, fingerprint=fingerprint) != \
            serve_cache_key(b, fingerprint=fingerprint)
        assert serve_cache_key(a, fingerprint=fingerprint) == \
            serve_cache_key(a, fingerprint=fingerprint)
