"""Functional tests for Path ORAM: correctness, invariants, obliviousness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oram.path_oram import Op, PathOram, StashOverflowError
from repro.utils.rng import DeterministicRng


def make_oram(levels=6, seed=1, **kwargs):
    defaults = dict(blocks_per_bucket=4, block_bytes=16, stash_capacity=200)
    defaults.update(kwargs)
    return PathOram(levels=levels, rng=DeterministicRng(seed, "oram"),
                    **defaults)


def payload(value, size=16):
    return value.to_bytes(4, "little") * (size // 4)


class TestCorrectness:
    def test_read_after_write(self):
        oram = make_oram()
        oram.access(5, Op.WRITE, payload(42))
        assert oram.access(5, Op.READ) == payload(42)

    def test_unwritten_reads_zero(self):
        oram = make_oram()
        assert oram.access(9, Op.READ) == bytes(16)

    def test_overwrite(self):
        oram = make_oram()
        oram.access(5, Op.WRITE, payload(1))
        oram.access(5, Op.WRITE, payload(2))
        assert oram.access(5, Op.READ) == payload(2)

    def test_write_returns_previous_value(self):
        oram = make_oram()
        oram.access(5, Op.WRITE, payload(1))
        previous = oram.access(5, Op.WRITE, payload(2))
        assert previous == payload(1)

    def test_many_blocks_independent(self):
        oram = make_oram()
        for address in range(20):
            oram.access(address, Op.WRITE, payload(address + 100))
        for address in range(20):
            assert oram.access(address, Op.READ) == payload(address + 100)

    def test_write_requires_data(self):
        oram = make_oram()
        with pytest.raises(ValueError):
            oram.access(1, Op.WRITE)

    def test_write_validates_size(self):
        oram = make_oram()
        with pytest.raises(ValueError):
            oram.access(1, Op.WRITE, b"tiny")

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 31), st.integers(0, 255)),
                    min_size=1, max_size=60))
    def test_matches_reference_dict(self, operations):
        """Property: ORAM behaves exactly like a plain dict of blocks."""
        oram = make_oram(levels=5)
        reference = {}
        for address, value in operations:
            oram.access(address, Op.WRITE, payload(value))
            reference[address] = payload(value)
        for address, expected in reference.items():
            assert oram.access(address, Op.READ) == expected


class TestInvariants:
    def test_block_on_path_or_stash(self):
        oram = make_oram()
        for address in range(30):
            oram.access(address, Op.WRITE, payload(address))
        for address in range(30):
            assert oram.invariant_block_on_path_or_stash(address)

    def test_stash_stays_bounded(self):
        oram = make_oram(levels=7)
        rng = DeterministicRng(3, "w")
        for _ in range(600):
            oram.access(rng.randrange(200), Op.WRITE, payload(1))
        # Z=4 keeps the stash tiny relative to the 200-block bound
        assert oram.stash.peak_occupancy < 100

    def test_access_count_tracks(self):
        oram = make_oram()
        oram.access(1, Op.READ)
        oram.access(2, Op.WRITE, payload(2))
        oram.dummy_access()
        assert oram.access_count == 3
        assert oram.dummy_access_count == 1

    def test_remap_on_every_access(self):
        oram = make_oram(levels=10)
        oram.access(1, Op.WRITE, payload(1))
        leaves = set()
        for _ in range(30):
            oram.access(1, Op.READ)
            leaves.add(oram.posmap.lookup(1))
        assert len(leaves) > 10

    def test_stash_overflow_raises_without_eviction(self):
        oram = make_oram(levels=2, stash_capacity=2,
                         background_eviction=False)
        with pytest.raises(StashOverflowError):
            for address in range(64):
                oram.access(address, Op.WRITE, payload(address))

    def test_background_eviction_recovers(self):
        oram = make_oram(levels=6, stash_capacity=30,
                         background_eviction=True)
        for address in range(120):
            oram.access(address % 60, Op.WRITE, payload(address))
        # pressure may or may not arise; the run must simply stay legal
        assert len(oram.stash) <= 30 or oram.background_evictions > 0


class TestObliviousness:
    def _trace_shape(self, operations, seed=7):
        """Bucket-level trace for a given logical access sequence."""
        oram = make_oram(levels=6, seed=seed, record_trace=True)
        for address, op, value in operations:
            if op is Op.WRITE:
                oram.access(address, op, payload(value))
            else:
                oram.access(address, op)
        return oram.trace

    def test_trace_length_depends_only_on_count(self):
        """Same number of accesses => same trace length, any addresses."""
        hot = [(1, Op.READ, 0)] * 12
        scan = [(address, Op.READ, 0) for address in range(12)]
        writes = [(address, Op.WRITE, address) for address in range(12)]
        lengths = {len(self._trace_shape(sequence))
                   for sequence in (hot, scan, writes)}
        assert len(lengths) == 1

    def test_trace_structure_is_paths(self):
        """Every access is exactly one path read then one path write."""
        oram = make_oram(levels=6, record_trace=True)
        oram.access(3, Op.READ)
        events = oram.trace
        assert len(events) == 2 * 6
        assert [event.kind for event in events] == ["read"] * 6 + ["write"] * 6
        read_buckets = [event.bucket for event in events[:6]]
        write_buckets = [event.bucket for event in events[6:]]
        assert read_buckets == write_buckets
        assert read_buckets[0] == 0  # root first

    def test_reads_and_writes_indistinguishable(self):
        """A read and a write to the same fresh ORAM produce path accesses
        of identical structure (the leaf is random either way)."""
        read_trace = self._trace_shape([(5, Op.READ, 0)])
        write_trace = self._trace_shape([(5, Op.WRITE, 9)])
        assert [event.kind for event in read_trace] == \
            [event.kind for event in write_trace]

    def test_repeated_access_touches_fresh_paths(self):
        """Temporal locality must not show up as repeated identical paths."""
        oram = make_oram(levels=10, record_trace=True)
        oram.access(1, Op.WRITE, payload(1))
        paths = []
        for _ in range(20):
            start = len(oram.trace)
            oram.access(1, Op.READ)
            paths.append(tuple(event.bucket
                               for event in oram.trace[start:start + 10]))
        assert len(set(paths)) > 10

    def test_dummy_access_indistinguishable(self):
        oram = make_oram(levels=6, record_trace=True)
        oram.dummy_access()
        real = make_oram(levels=6, record_trace=True)
        real.access(1, Op.READ)
        assert [event.kind for event in oram.trace] == \
            [event.kind for event in real.trace]
