"""Tests for the open-loop load generator (repro.serve.loadgen)."""

import pytest

from repro.oram.path_oram import Op
from repro.serve.loadgen import (
    Request,
    TenantSpec,
    generate_stream,
    merge_streams,
    offered_load,
    tenant_from_profile,
)


def stream(spec, seed=7, base=0, limit=256, block_bytes=64):
    return generate_stream(spec, seed, base_address=base,
                           address_limit=limit, block_bytes=block_bytes)


class TestTenantSpec:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", rate=-0.1, requests=10)
        with pytest.raises(ValueError):
            TenantSpec(name="t", rate=0.1, requests=10, arrival="weird")
        with pytest.raises(ValueError):
            TenantSpec(name="t", rate=0.1, requests=10, write_fraction=1.5)
        with pytest.raises(ValueError):
            TenantSpec(name="t", rate=0.1, requests=10,
                       address_span=8, hot_span=16)
        with pytest.raises(ValueError):
            TenantSpec(name="t", rate=0.1, requests=10, burst_factor=0.5)

    def test_from_profile_borrows_locality_knobs(self):
        from repro.workloads.spec import get_profile

        spec = tenant_from_profile("t0", "mcf", rate=0.1, requests=10,
                                   address_span=128)
        profile = get_profile("mcf")
        assert spec.hot_fraction == profile.hot_fraction
        assert spec.write_fraction == profile.write_fraction
        assert 1 <= spec.hot_span <= 128

    def test_from_profile_unknown_name_raises(self):
        with pytest.raises(KeyError):
            tenant_from_profile("t0", "no-such-benchmark", rate=0.1,
                                requests=10)


class TestGeneration:
    def test_zero_rate_stream_is_empty(self):
        assert stream(TenantSpec(name="t", rate=0.0, requests=100)) == []

    def test_zero_requests_stream_is_empty(self):
        assert stream(TenantSpec(name="t", rate=0.5, requests=0)) == []

    def test_deterministic_per_seed(self):
        spec = TenantSpec(name="t", rate=0.05, requests=64,
                          write_fraction=0.3, hot_fraction=0.4, hot_span=8)
        assert stream(spec, seed=7) == stream(spec, seed=7)
        assert stream(spec, seed=7) != stream(spec, seed=8)

    def test_arrivals_sorted_and_rate_roughly_honoured(self):
        spec = TenantSpec(name="t", rate=0.1, requests=400)
        requests = stream(spec)
        arrivals = [request.arrival for request in requests]
        assert arrivals == sorted(arrivals)
        measured = offered_load([requests])
        assert measured == pytest.approx(0.1, rel=0.25)

    def test_uniform_arrivals_fixed_spacing(self):
        spec = TenantSpec(name="t", rate=0.25, requests=10,
                          arrival="uniform")
        arrivals = [request.arrival for request in stream(spec)]
        gaps = {b - a for a, b in zip(arrivals, arrivals[1:])}
        assert gaps == {4}

    def test_burst_arrivals_are_burstier_than_poisson(self):
        """Hyperexponential gaps: same mean neighbourhood, fatter tail."""
        poisson = stream(TenantSpec(name="t", rate=0.05, requests=800))
        burst = stream(TenantSpec(name="t", rate=0.05, requests=800,
                                  arrival="burst", burst_factor=16.0,
                                  burst_fraction=0.25))
        def squared_cv(requests):
            gaps = [b.arrival - a.arrival
                    for a, b in zip(requests, requests[1:])]
            mean = sum(gaps) / len(gaps)
            var = sum((gap - mean) ** 2 for gap in gaps) / len(gaps)
            return var / (mean * mean)
        assert squared_cv(burst) > squared_cv(poisson)

    def test_addresses_respect_base_and_limit(self):
        spec = TenantSpec(name="t", rate=0.2, requests=200,
                          address_span=32)
        for request in stream(spec, base=64, limit=96):
            assert 64 <= request.address < 96

    def test_hot_fraction_concentrates_addresses(self):
        spec = TenantSpec(name="t", rate=0.2, requests=500,
                          address_span=64, hot_fraction=0.9, hot_span=4)
        hot = sum(request.address < 4 for request in stream(spec))
        assert hot > 400

    def test_zipf_skews_toward_low_ranks(self):
        uniform = stream(TenantSpec(name="t", rate=0.2, requests=500,
                                    address_span=64))
        zipf = stream(TenantSpec(name="t", rate=0.2, requests=500,
                                 address_span=64, zipf_exponent=1.2))
        def head(requests):
            return sum(r.address < 8 for r in requests)
        assert head(zipf) > 2 * head(uniform)

    def test_write_fraction_and_payloads(self):
        spec = TenantSpec(name="t", rate=0.2, requests=300,
                          write_fraction=0.5)
        requests = stream(spec, block_bytes=64)
        writes = [r for r in requests if r.op is Op.WRITE]
        reads = [r for r in requests if r.op is Op.READ]
        assert 0.35 < len(writes) / len(requests) < 0.65
        assert all(len(r.data) == 64 for r in writes)
        assert all(r.data is None for r in reads)


class TestMerge:
    def test_total_deterministic_order(self):
        a = [Request(arrival=5, tenant="a", sequence=0, address=1,
                     op=Op.READ),
             Request(arrival=9, tenant="a", sequence=1, address=2,
                     op=Op.READ)]
        b = [Request(arrival=5, tenant="b", sequence=0, address=3,
                     op=Op.READ)]
        merged = merge_streams([a, b])
        assert [(r.arrival, r.tenant) for r in merged] == \
            [(5, "a"), (5, "b"), (9, "a")]
        assert merge_streams([b, a]) == merged

    def test_offered_load_empty(self):
        assert offered_load([[], []]) == 0.0
