"""The tracer core: null-tracer zero overhead, collection, clocks."""

import pytest

from repro.core.independent import IndependentProtocol
from repro.core.split import SplitProtocol
from repro.obs.tracer import (CATEGORY_LINK, CATEGORY_PROTOCOL,
                              CATEGORY_STASH, NULL_TRACER, CollectingTracer,
                              StepClock, TraceEvent, Tracer, merge_events)
from repro.oram.path_oram import Op, PathOram
from repro.oram.stash import Stash
from repro.oram.bucket import Block
from repro.utils.rng import DeterministicRng


class TestNullTracer:
    def test_disabled_by_default(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is False

    def test_methods_are_noops(self):
        NULL_TRACER.span("x", "c", "l", 0, 5)
        NULL_TRACER.instant("x", "c", "l", 0)
        NULL_TRACER.counter("x", "c", "l", 0, 1)

    def test_protocol_clock_untouched_without_tracer(self):
        # The zero-overhead contract: with the null tracer, no logical
        # clock advances and no event is ever materialized.
        protocol = IndependentProtocol(6, 2)
        protocol.read(3)
        assert protocol.clock.now == 0

    def test_stash_emits_nothing_without_tracer(self):
        stash = Stash(8)
        stash.add(Block(1, 0, b""))
        stash.remove(1)
        assert stash.clock.now == 0


class TestCollectingTracer:
    def test_span_records_interval(self):
        tracer = CollectingTracer()
        tracer.span("work", "cat", "lane", 10, 25, extra=1)
        (event,) = tracer.events
        assert (event.kind, event.start, event.duration) == ("span", 10, 15)
        assert event.end == 25
        assert event.args == {"extra": 1}

    def test_span_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            CollectingTracer().span("bad", "cat", "lane", 10, 5)

    def test_selectors(self):
        tracer = CollectingTracer()
        tracer.span("a", "x", "l1", 0, 1)
        tracer.span("b", "y", "l2", 0, 1)
        tracer.counter("q", "x", "l1", 2, 7)
        assert len(tracer.spans(category="x")) == 1
        assert len(tracer.spans(name="b")) == 1
        assert tracer.counters("q")[0].args["value"] == 7
        assert tracer.lanes() == ["l1", "l2"]

    def test_event_key_is_stable(self):
        event = TraceEvent("span", "n", "c", "l", 1, 2, {"b": 2, "a": 1})
        assert event.key() == ("span", "n", "c", "l", 1, 2,
                               (("a", 1), ("b", 2)))


class TestStepClock:
    def test_tick_returns_previous(self):
        clock = StepClock()
        assert clock.tick() == 0
        assert clock.tick(3) == 1
        assert clock.now == 4


class TestMergeEvents:
    def test_orders_by_start(self):
        early = TraceEvent("instant", "a", "c", "l", 1, 0)
        late = TraceEvent("instant", "b", "c", "l", 9, 0)
        assert [e.name for e in merge_events([late], [early])] == ["a", "b"]


class TestFunctionalTierInstrumentation:
    def test_independent_phase_spans(self):
        tracer = CollectingTracer()
        protocol = IndependentProtocol(6, 2, tracer=tracer)
        for address in range(6):
            protocol.read(address)
        names = {event.name
                 for event in tracer.spans(category=CATEGORY_PROTOCOL)}
        assert {"ACCESS", "PROBE", "FETCH_RESULT", "APPEND"} <= names

    def test_split_phase_spans(self):
        tracer = CollectingTracer()
        protocol = SplitProtocol(6, 2, tracer=tracer)
        protocol.read(1)
        names = [event.name
                 for event in tracer.spans(category=CATEGORY_PROTOCOL)]
        assert names == ["FETCH_DATA", "METADATA", "FETCH_STASH",
                         "RECEIVE_LIST"]

    def test_link_events_mirrored_as_instants(self):
        tracer = CollectingTracer()
        protocol = IndependentProtocol(6, 2, tracer=tracer)
        protocol.read(0)
        link = [event for event in tracer.events
                if event.category == CATEGORY_LINK]
        # ACCESS + PROBE + FETCH_RESULT up/down + one APPEND per SDIMM.
        assert len(link) == 6
        assert {event.args["direction"] for event in link} == {"up", "down"}

    def test_stash_occupancy_timeline(self):
        tracer = CollectingTracer()
        oram = PathOram(levels=5, blocks_per_bucket=4, block_bytes=64,
                        stash_capacity=50, rng=DeterministicRng(7, "t"),
                        tracer=tracer, trace_lane="stash0")
        for address in range(12):
            oram.access(address, Op.READ)
        samples = [event.args["value"]
                   for event in tracer.counters("stash_occupancy")]
        assert samples, "occupancy timeline must not be empty"
        assert max(samples) == oram.stash.peak_occupancy
        assert all(event.category == CATEGORY_STASH
                   for event in tracer.counters("stash_occupancy"))
