"""Functional tests for the Split ORAM protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commands import SdimmCommand
from repro.core.split import SplitIntegrityError, SplitProtocol
from repro.oram.path_oram import Op


def make_protocol(levels=6, ways=2, seed=2018, **kwargs):
    return SplitProtocol(levels=levels, ways=ways, block_bytes=16,
                         stash_capacity=200, seed=seed, **kwargs)


def payload(value):
    return value.to_bytes(4, "little") * 4


class TestCorrectness:
    def test_read_after_write(self):
        protocol = make_protocol()
        protocol.write(5, payload(42))
        assert protocol.read(5) == payload(42)

    def test_unwritten_reads_zero(self):
        protocol = make_protocol()
        assert protocol.read(9) == bytes(16)

    def test_overwrite(self):
        protocol = make_protocol()
        for round_number in range(8):
            protocol.write(3, payload(round_number))
            assert protocol.read(3) == payload(round_number)

    def test_many_blocks(self):
        protocol = make_protocol(levels=8)
        for address in range(60):
            protocol.write(address, payload(address + 900))
        for address in range(60):
            assert protocol.read(address) == payload(address + 900)

    def test_four_way_split(self):
        protocol = make_protocol(ways=4)
        for address in range(20):
            protocol.write(address, payload(address))
        for address in range(20):
            assert protocol.read(address) == payload(address)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 255)),
                    min_size=1, max_size=30))
    def test_matches_reference_dict(self, operations):
        protocol = make_protocol(levels=5)
        reference = {}
        for address, value in operations:
            protocol.write(address, payload(value))
            reference[address] = payload(value)
        for address, expected in reference.items():
            assert protocol.read(address) == expected

    def test_write_validates_size(self):
        with pytest.raises(ValueError):
            make_protocol().access(1, Op.WRITE, b"small")

    def test_block_size_must_divide(self):
        with pytest.raises(ValueError):
            SplitProtocol(levels=5, ways=3, block_bytes=16)


class TestSlicing:
    def test_no_buffer_holds_whole_block(self):
        """Each SDIMM stores 1/N of every block — never the whole thing."""
        protocol = make_protocol()
        secret = bytes(range(16))
        protocol.write(1, secret)
        for buffer in protocol.buffers:
            cells = buffer._store.values()
            for cell in cells:
                for ciphertext in cell.data_ciphertexts:
                    assert len(ciphertext) == 8  # 16 bytes / 2 ways
                    assert secret not in ciphertext

    def test_stashes_stay_aligned(self):
        protocol = make_protocol()
        for address in range(30):
            protocol.write(address, payload(address))
            assert protocol.stashes_aligned()

    def test_dummy_access_preserves_alignment(self):
        protocol = make_protocol()
        protocol.write(1, payload(1))
        for _ in range(10):
            protocol.dummy_access()
            assert protocol.stashes_aligned()
        assert protocol.read(1) == payload(1)

    def test_shadow_occupancy_bounded(self):
        protocol = make_protocol(levels=7, seed=9)
        for address in range(200):
            protocol.write(address % 50, payload(address))
        # eviction keeps the stash near-empty between accesses
        assert protocol.shadow_occupancy < 60

    def test_mac_overhead_is_per_way(self):
        """n-way splitting stores n MACs per bucket (the paper's overhead)."""
        protocol = make_protocol(ways=4)
        protocol.write(1, payload(1))
        macs_per_bucket = 0
        sample_bucket = None
        for buffer in protocol.buffers:
            if buffer._store:
                sample_bucket = next(iter(buffer._store))
                break
        for buffer in protocol.buffers:
            if sample_bucket in buffer._store:
                macs_per_bucket += 1
        assert macs_per_bucket == 4


class TestIntegrity:
    def test_tampered_slice_detected(self):
        protocol = make_protocol(seed=5)
        protocol.write(1, payload(1))
        victim = protocol.buffers[0]
        bucket = next(iter(victim._store))
        victim.tamper_bucket(bucket)
        with pytest.raises(SplitIntegrityError):
            for _ in range(200):
                protocol.read(1)

    def test_clean_run_verifies(self):
        protocol = make_protocol()
        for address in range(10):
            protocol.write(address, payload(address))
            protocol.read(address)

    def test_single_slice_replay_detected(self):
        """Replaying ONE way's stale cell (its own MAC still verifies!)
        desynchronizes the merged counter, which the CPU's trusted chain
        catches — the cross-way freshness property of the Split design."""
        import copy

        protocol = make_protocol(seed=8)
        protocol.write(1, payload(1))
        victim = protocol.buffers[0]
        bucket = next(iter(victim._store))
        stale_cell = copy.deepcopy(victim._store[bucket])
        # advance the system so the bucket gets rewritten
        for address in range(200):
            protocol.write(address % 20, payload(address % 256))
        victim._store[bucket] = stale_cell  # adversarial replay, one way
        with pytest.raises(SplitIntegrityError):
            for _ in range(300):
                protocol.read(1)

    def test_counter_slices_reassemble(self):
        """The ways' counter slices merge back to the true write counter."""
        from repro.core.split import _COUNTER_BITS
        from repro.utils.bitops import merge_bits_round_robin

        protocol = make_protocol()
        for address in range(12):
            protocol.write(address, payload(address))
        checked = 0
        for bucket, expected in protocol._expected_counters.items():
            slices = []
            missing = False
            for buffer in protocol.buffers:
                cell = buffer._store.get(bucket)
                if cell is None:
                    missing = True
                    break
                slices.append(cell.counter_slice)
            if missing:
                continue
            assert merge_bits_round_robin(slices, _COUNTER_BITS) == expected
            checked += 1
        assert checked > 0


class TestObliviousness:
    def _shapes(self, operations, seed=2018):
        protocol = make_protocol(levels=6, seed=seed, record_link=True)
        for address, op, value in operations:
            if op is Op.WRITE:
                protocol.access(address, op, payload(value))
            else:
                protocol.access(address, op)
        return protocol.link.shapes()

    def test_link_shape_independent_of_addresses(self):
        hot = [(1, Op.READ, 0)] * 10
        scan = [(address, Op.READ, 0) for address in range(10)]
        assert self._shapes(hot) == self._shapes(scan)

    def test_link_shape_independent_of_operation(self):
        reads = [(index, Op.READ, 0) for index in range(10)]
        writes = [(index, Op.WRITE, index) for index in range(10)]
        assert self._shapes(reads) == self._shapes(writes)

    def test_data_moves_locally_metadata_to_cpu(self):
        """The Split property: FETCH_DATA carries no payload on the channel;
        only metadata and the single requested block cross it."""
        protocol = make_protocol(record_link=True)
        protocol.read(1)
        fetch_data = [event for event in protocol.link.events
                      if event.command is SdimmCommand.FETCH_DATA]
        assert fetch_data
        assert all(event.payload_bytes == 0 for event in fetch_data)
        stash_down = [event for event in protocol.link.events
                      if event.command is SdimmCommand.FETCH_STASH and
                      event.direction == "down"]
        # each way returns only its slice of the one requested block
        assert {event.payload_bytes for event in stash_down} == {8}

    def test_every_way_participates(self):
        protocol = make_protocol(ways=4, record_link=True)
        protocol.read(1)
        targets = {event.sdimm for event in protocol.link.events}
        assert targets == {0, 1, 2, 3}
