"""Tests for the wire-format message layer and the fully-wired protocol."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commands import SdimmCommand
from repro.core.messages import (
    AccessMessage,
    AppendMessage,
    ResultMessage,
    WiredIndependentProtocol,
)
from repro.oram.path_oram import Op


def payload(value, size=64):
    return bytes([value]) * size


class TestMessageFormats:
    @given(st.integers(0, 2**60), st.integers(0, 2**30),
           st.sampled_from([Op.READ, Op.WRITE]), st.integers(0, 255))
    def test_access_roundtrip(self, address, leaf, op, fill):
        message = AccessMessage(address, leaf, op, payload(fill))
        parsed = AccessMessage.parse(message.serialize(), 64)
        assert parsed == message

    def test_access_fixed_size(self):
        """Reads and writes serialize to identical lengths (obliviousness)."""
        read = AccessMessage(1, 2, Op.READ, payload(0))
        write = AccessMessage(10**9, 2**20, Op.WRITE, payload(255))
        assert len(read.serialize()) == len(write.serialize())

    def test_access_rejects_bad_size(self):
        with pytest.raises(ValueError):
            AccessMessage.parse(b"short", 64)

    @given(st.integers(0, 2**30), st.booleans(), st.integers(0, 255))
    def test_result_roundtrip(self, leaf, dummy, fill):
        message = ResultMessage(payload(fill), leaf, dummy)
        assert ResultMessage.parse(message.serialize(), 64) == message

    @given(st.booleans(), st.integers(0, 2**40), st.integers(0, 2**30),
           st.integers(0, 255))
    def test_append_roundtrip(self, dummy, address, leaf, fill):
        message = AppendMessage(dummy, address, leaf, payload(fill))
        assert AppendMessage.parse(message.serialize(), 64) == message

    def test_dummy_append_same_size_as_real(self):
        real = AppendMessage(False, 5, 6, payload(7))
        dummy = AppendMessage.dummy(64)
        assert len(real.serialize()) == len(dummy.serialize())


class TestWiredProtocol:
    """End to end: every byte as an encrypted, Table I-framed DDR message."""

    def make(self, levels=8, sdimms=2, seed=11):
        return WiredIndependentProtocol(global_levels=levels,
                                        sdimm_count=sdimms, seed=seed)

    def test_read_after_write(self):
        protocol = self.make()
        protocol.write(5, payload(42))
        assert protocol.read(5) == payload(42)

    def test_unwritten_reads_zero(self):
        protocol = self.make()
        assert protocol.read(9) == bytes(64)

    def test_survives_migrations(self):
        protocol = self.make(sdimms=4, seed=3)
        protocol.write(77, payload(1))
        for round_number in range(2, 40):
            assert protocol.read(77) == payload(round_number - 1)
            protocol.write(77, payload(round_number % 256))

    @settings(max_examples=5, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 255)),
                    min_size=1, max_size=25))
    def test_matches_reference_dict(self, operations):
        protocol = self.make(levels=6)
        reference = {}
        for address, value in operations:
            protocol.write(address, payload(value))
            reference[address] = payload(value)
        for address, expected in reference.items():
            assert protocol.read(address) == expected

    def test_frames_flow_through_both_ports(self):
        protocol = self.make()
        protocol.write(1, payload(1))
        protocol.read(1)
        assert all(port.frames_handled > 0 for port in protocol.sdimm_ports)
        assert all(port.frames_sent > 0 for port in protocol.cpu_ports)

    def test_probe_then_fetch_result_discipline(self):
        """FETCH_RESULT without a pending response must fail — the DDR
        slave cannot invent data."""
        protocol = self.make()
        cpu = protocol.cpu_ports[0]
        port = protocol.sdimm_ports[0]
        assert port.handle(cpu.send_probe()) == b"\x00"
        with pytest.raises(LookupError):
            port.handle(cpu.send_fetch_result())

    def test_tampered_frame_rejected(self):
        """Bit-flipping a frame on the bus trips the link MAC."""
        from repro.crypto.mac import MacError

        protocol = self.make()
        cpu = protocol.cpu_ports[0]
        message = AccessMessage(1, protocol.posmap.lookup(1), Op.READ,
                                bytes(64))
        frame = cpu.send(SdimmCommand.ACCESS, message)
        corrupted = frame.payload[:-1] + bytes([frame.payload[-1] ^ 1])
        from repro.core.commands import DdrFrame
        bad_frame = DdrFrame(frame.is_write, frame.ras, frame.cas_sequence,
                             corrupted)
        with pytest.raises(MacError):
            protocol.sdimm_ports[0].handle(bad_frame)

    def test_replayed_frame_rejected(self):
        """Replaying an old encrypted frame verbatim trips the counter
        check: the port tracks the highest message counter seen."""
        from repro.core.messages import ReplayError

        protocol = self.make()
        owner = protocol.sdimm_ports[0].buffer.owner_of(
            protocol.posmap.lookup(1))
        cpu = protocol.cpu_ports[owner]
        port = protocol.sdimm_ports[owner]
        message = AccessMessage(1, protocol.posmap.lookup(1), Op.READ,
                                bytes(64))
        frame = cpu.send(SdimmCommand.ACCESS, message)
        port.handle(frame)
        port.handle(cpu.send_probe())
        port.handle(cpu.send_fetch_result())
        with pytest.raises(ReplayError):
            port.handle(frame)  # verbatim replay of the captured frame
