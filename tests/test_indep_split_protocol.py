"""Functional tests for the combined INDEP-SPLIT protocol (Figure 7e)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.commands import SdimmCommand
from repro.core.indep_split import IndepSplitProtocol
from repro.oram.path_oram import Op


def make_protocol(levels=8, groups=2, ways=2, seed=2018, p=0.1, **kwargs):
    return IndepSplitProtocol(
        global_levels=levels, groups=groups, ways=ways, block_bytes=16,
        stash_capacity=200, drain_probability=p, seed=seed, **kwargs)


def payload(value):
    return value.to_bytes(4, "little") * 4


class TestCorrectness:
    def test_read_after_write(self):
        protocol = make_protocol()
        protocol.write(5, payload(42))
        assert protocol.read(5) == payload(42)

    def test_unwritten_reads_zero(self):
        protocol = make_protocol()
        assert protocol.read(9) == bytes(16)

    def test_survives_group_migrations(self):
        protocol = make_protocol(seed=3)
        protocol.write(77, payload(1))
        for round_number in range(2, 50):
            assert protocol.read(77) == payload(round_number - 1)
            protocol.write(77, payload(round_number))

    def test_many_blocks(self):
        protocol = make_protocol(levels=9)
        for address in range(50):
            protocol.write(address, payload(address + 300))
        for address in range(50):
            assert protocol.read(address) == payload(address + 300)

    @settings(max_examples=8, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 15), st.integers(0, 255)),
                    min_size=1, max_size=30))
    def test_matches_reference_dict(self, operations):
        protocol = make_protocol(levels=7, p=0.2)
        reference = {}
        for address, value in operations:
            protocol.write(address, payload(value))
            reference[address] = payload(value)
        for address, expected in reference.items():
            assert protocol.read(address) == expected

    def test_write_requires_data(self):
        with pytest.raises(ValueError):
            make_protocol().access(1, Op.WRITE)


class TestStructure:
    def test_groups_are_split_instances(self):
        protocol = make_protocol(groups=2, ways=2)
        for group in protocol.groups:
            assert len(group.split.buffers) == 2

    def test_group_tree_is_half_depth(self):
        protocol = make_protocol(levels=8, groups=2)
        assert protocol.groups[0].split.geometry.levels == 7

    def test_stash_alignment_holds_under_churn(self):
        protocol = make_protocol(seed=7, p=0.3)
        for address in range(120):
            protocol.write(address % 30, payload(address))
            for group in protocol.groups:
                assert group.split.stashes_aligned()

    def test_drain_accesses_occur(self):
        protocol = make_protocol(seed=7, p=0.5)
        for address in range(200):
            protocol.write(address % 40, payload(address))
        drains = sum(group.queue.drain_services
                     for group in protocol.groups)
        assert drains > 0


class TestObliviousness:
    def _shapes(self, operations, seed=2018):
        protocol = make_protocol(seed=seed, p=0.0, record_link=True)
        for address, op, value in operations:
            if op is Op.WRITE:
                protocol.access(address, op, payload(value))
            else:
                protocol.access(address, op)
        return protocol.link.shapes()

    def test_link_shape_independent_of_addresses(self):
        hot = [(1, Op.READ, 0)] * 10
        scan = [(address, Op.READ, 0) for address in range(10)]
        assert self._shapes(hot) == self._shapes(scan)

    def test_link_shape_independent_of_operation(self):
        reads = [(index, Op.READ, 0) for index in range(10)]
        writes = [(index, Op.WRITE, index) for index in range(10)]
        assert self._shapes(reads) == self._shapes(writes)

    def test_append_broadcast_to_every_group(self):
        protocol = make_protocol(p=0.0, record_link=True)
        protocol.read(3)
        appends = [event for event in protocol.link.events
                   if event.command is SdimmCommand.APPEND]
        assert sorted(event.sdimm for event in appends) == [0, 1]
