"""Tests for the set-associative LRU cache (LLC / PLB / ORAM cache)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache


def tiny_cache(assoc=2, sets=4, line=64):
    return SetAssociativeCache(capacity_bytes=assoc * sets * line,
                               line_bytes=line, associativity=assoc)


class TestBasics:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert not cache.access(0).hit
        assert cache.access(0).hit

    def test_counts(self):
        cache = tiny_cache()
        cache.access(0)
        cache.access(0)
        cache.access(1)
        assert cache.hits == 1
        assert cache.misses == 2
        assert cache.accesses == 3
        assert cache.hit_rate == pytest.approx(1 / 3)

    def test_rejects_ragged_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 64, 8)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(3 * 64 * 2, 64, 2)

    def test_resident_lines(self):
        cache = tiny_cache()
        for line in range(5):
            cache.access(line)
        assert cache.resident_lines == 5


class TestLruEviction:
    def test_lru_victim_chosen(self):
        cache = tiny_cache(assoc=2, sets=1)
        cache.access(0)
        cache.access(1)
        cache.access(0)          # 1 is now LRU
        result = cache.access(2)
        assert result.victim_address == 1

    def test_eviction_only_within_set(self):
        cache = tiny_cache(assoc=1, sets=4)
        cache.access(0)
        result = cache.access(1)  # different set, no eviction
        assert result.victim_address is None
        result = cache.access(4)  # same set as 0
        assert result.victim_address == 0

    def test_victim_address_reconstruction(self):
        cache = tiny_cache(assoc=1, sets=4)
        cache.access(13)
        result = cache.access(13 + 4)
        assert result.victim_address == 13

    def test_dirty_victim_flagged(self):
        cache = tiny_cache(assoc=1, sets=1)
        cache.access(0, is_write=True)
        result = cache.access(1)
        assert result.victim_dirty
        assert cache.writebacks == 1

    def test_clean_victim_not_flagged(self):
        cache = tiny_cache(assoc=1, sets=1)
        cache.access(0, is_write=False)
        result = cache.access(1)
        assert not result.victim_dirty
        assert cache.writebacks == 0

    def test_write_hit_dirties_line(self):
        cache = tiny_cache(assoc=1, sets=1)
        cache.access(0)
        cache.access(0, is_write=True)
        result = cache.access(1)
        assert result.victim_dirty

    def test_dirty_bit_sticks_through_reads(self):
        cache = tiny_cache(assoc=2, sets=1)
        cache.access(0, is_write=True)
        cache.access(1)
        cache.access(0)           # read hit must not clean the line
        cache.access(2)           # evicts 1 (clean)
        result = cache.access(3)  # evicts 0 (dirty)
        assert result.victim_dirty


class TestProbeInvalidateFlush:
    def test_probe_does_not_touch_lru(self):
        cache = tiny_cache(assoc=2, sets=1)
        cache.access(0)
        cache.access(1)
        assert cache.probe(0)
        # 0 is still LRU because probe must not promote it
        result = cache.access(2)
        assert result.victim_address == 0

    def test_probe_missing(self):
        assert not tiny_cache().probe(12)

    def test_invalidate(self):
        cache = tiny_cache()
        cache.access(0)
        assert cache.invalidate(0)
        assert not cache.probe(0)
        assert not cache.invalidate(0)

    def test_flush_reports_dirty_lines(self):
        cache = tiny_cache()
        cache.access(0, is_write=True)
        cache.access(1, is_write=True)
        cache.access(2)
        assert cache.flush() == 2
        assert cache.resident_lines == 0


class TestProperties:
    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=63), max_size=200))
    def test_occupancy_bounded(self, addresses):
        cache = tiny_cache(assoc=2, sets=4)
        for address in addresses:
            cache.access(address)
        assert cache.resident_lines <= 8

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=7), min_size=1,
                    max_size=50))
    def test_working_set_within_capacity_never_misses_twice(self, addresses):
        """With 8 lines over 8 ways there are no conflict misses."""
        cache = tiny_cache(assoc=8, sets=1)
        for address in addresses:
            cache.access(address)
        assert cache.misses == len(set(addresses))

    @settings(max_examples=20)
    @given(st.lists(st.tuples(st.integers(0, 127), st.booleans()),
                    max_size=300))
    def test_hits_plus_misses_is_accesses(self, operations):
        cache = tiny_cache()
        for address, is_write in operations:
            cache.access(address, is_write)
        assert cache.hits + cache.misses == len(operations)
