"""Tests for repro.faults.campaign: end-to-end faulted runs."""

import json

import pytest

from repro.faults.campaign import (CampaignSpec, _build_protocol,
                                   build_faulted_protocol,
                                   campaign_cache_key, run_campaign,
                                   run_campaign_sweep)
from repro.faults.plan import FaultPlan
from repro.obs.tracer import NULL_TRACER
from repro.parallel import RunCache


def faulty_spec(design, **overrides):
    kwargs = dict(design=design, accesses=48, levels=5, sites=2,
                  seed=2018, bit_flips=2, replays=1, stuck_cells=1,
                  link_drops=1, link_duplicates=1, link_delays=1,
                  buffer_stalls=1)
    kwargs.update(overrides)
    return CampaignSpec(**kwargs)


class TestSpec:
    def test_round_trip(self):
        spec = faulty_spec("split")
        assert CampaignSpec.from_dict(spec.to_dict()) == spec

    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(design="tofu")
        with pytest.raises(ValueError):
            CampaignSpec(accesses=0)

    def test_plan_sites_collapse_for_plain_split(self):
        assert faulty_spec("split").plan_sites == 1
        assert faulty_spec("independent").plan_sites == 2

    def test_build_plan_is_deterministic(self):
        spec = faulty_spec("independent")
        assert spec.build_plan() == spec.build_plan()


class TestZeroFaultEquivalence:
    """An empty plan must leave the protocol byte-identical to bare."""

    @pytest.mark.parametrize("design", ["independent", "split",
                                        "indep-split"])
    def test_link_shapes_match_the_bare_protocol(self, design):
        spec = faulty_spec(design, bit_flips=0, replays=0, stuck_cells=0,
                           link_drops=0, link_duplicates=0, link_delays=0,
                           buffer_stalls=0)
        empty = FaultPlan(seed=spec.seed, specs=())
        wrapped, injector, driver, stats = build_faulted_protocol(
            spec, empty)
        bare = _build_protocol(spec, NULL_TRACER)
        addresses = [i % 8 for i in range(24)]
        for index, address in enumerate(addresses):
            injector.begin_access(index)
            if driver is not None:
                driver.arm(index)
            wrapped.read(address)
            bare.read(address)
        assert wrapped.link.shapes() == bare.link.shapes()
        assert stats.detections == 0
        assert stats.retries == 0

    def test_zero_fault_campaign_report_is_clean(self):
        spec = faulty_spec("independent", bit_flips=0, replays=0,
                           stuck_cells=0, link_drops=0, link_duplicates=0,
                           link_delays=0, buffer_stalls=0)
        outcome = run_campaign(spec)
        assert outcome.completed
        assert outcome.accesses_completed == spec.accesses
        assert outcome.resilience["detections"] == 0
        assert outcome.resilience["failures"] == []
        assert outcome.all_detected    # vacuously: nothing injected


class TestFaultedCampaigns:
    @pytest.mark.parametrize("design", ["independent", "split",
                                        "indep-split"])
    @pytest.mark.parametrize("seed", [7, 2018])
    def test_every_applied_integrity_fault_is_detected(self, design, seed):
        outcome = run_campaign(faulty_spec(design, seed=seed))
        assert outcome.all_detected
        detection = outcome.detection["integrity"]
        assert detection["missed"] == 0
        assert detection["applied"] + detection["vacuous"] == \
            detection["scheduled"]

    @pytest.mark.parametrize("design", ["independent", "split",
                                        "indep-split"])
    def test_replay_is_byte_identical(self, design):
        spec = faulty_spec(design)
        first = run_campaign(spec).canonical_json()
        second = run_campaign(spec).canonical_json()
        assert first == second

    def test_independent_stuck_cell_quarantines(self):
        outcome = run_campaign(faulty_spec("independent"))
        assert outcome.completed
        assert outcome.quarantined
        assert outcome.resilience["quarantines"] >= 1
        assert any(record.get("action") == "quarantined"
                   for record in outcome.resilience["failures"])

    def test_split_stuck_cell_is_a_structured_terminal(self):
        outcome = run_campaign(faulty_spec("split"))
        assert not outcome.completed
        assert outcome.terminal is not None
        assert outcome.terminal["kind"] == "RetryExhaustedError"
        assert outcome.terminal["terminal"] is True
        assert outcome.accesses_completed < outcome.spec.accesses

    def test_metrics_surface_fault_counters(self):
        outcome = run_campaign(faulty_spec("independent"))
        counters = outcome.metrics["counters"]
        assert counters["faults/detections"] >= 1
        assert "faults/degraded_accesses" in counters

    def test_outcome_dict_is_json_serializable(self):
        payload = run_campaign(faulty_spec("indep-split")).to_dict()
        restored = json.loads(json.dumps(payload))
        assert restored["all_detected"] is True
        assert restored["plan_digest"] == payload["plan_digest"]


class TestSweepAndCache:
    def specs(self):
        return [faulty_spec(design, accesses=24)
                for design in ("independent", "split", "indep-split")]

    def test_cache_key_is_stable_and_plan_sensitive(self):
        spec = faulty_spec("independent")
        plan = spec.build_plan()
        assert campaign_cache_key(spec, plan) == \
            campaign_cache_key(spec, plan)
        other = faulty_spec("independent", seed=7)
        assert campaign_cache_key(other, other.build_plan()) != \
            campaign_cache_key(spec, plan)

    def test_serial_and_parallel_sweeps_agree(self):
        serial = run_campaign_sweep(self.specs(), jobs=1)
        parallel = run_campaign_sweep(self.specs(), jobs=2)
        assert serial == parallel

    def test_cache_round_trip(self, tmp_path):
        cache = RunCache(str(tmp_path))
        first = run_campaign_sweep(self.specs(), cache=cache)
        second = run_campaign_sweep(self.specs(), cache=cache)
        assert first == second
        # and a cached result equals a fresh computation
        assert second == run_campaign_sweep(self.specs(), cache=None)
