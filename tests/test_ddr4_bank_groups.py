"""Tests for DDR4 bank-group CAS pacing (tCCD_L vs tCCD_S)."""

import pytest

from repro.config import (
    DramOrganization,
    DramTiming,
    ddr4_organization,
    ddr4_timing,
)
from repro.dram.address import DecodedAddress
from repro.dram.channel import Channel


def ddr4_channel():
    return Channel(ddr4_timing(), ddr4_organization(), scale=1)


class TestBankGroupPacing:
    def test_same_group_pays_tccd_l(self):
        """Back-to-back CAS to two banks of one group space at tCCD_L."""
        channel = ddr4_channel()
        # banks 0 and 1 share group 0 (4 banks per group)
        first = channel.schedule_access(DecodedAddress(0, 0, 0, 0),
                                        False, 0)
        second = channel.schedule_access(DecodedAddress(0, 1, 0, 0),
                                         False, 0)
        assert second.cas_issue - first.cas_issue >= ddr4_timing().tccd_l

    def test_cross_group_streams_at_burst_rate(self):
        """Banks in different groups stream gaplessly (tCCD_S = tBURST)."""
        channel = ddr4_channel()
        # open both rows first so only CAS pacing is measured
        channel.schedule_access(DecodedAddress(0, 0, 0, 0), False, 0)
        channel.schedule_access(DecodedAddress(0, 4, 0, 0), False, 0)
        first = channel.schedule_access(DecodedAddress(0, 0, 0, 1),
                                        False, 1000)
        second = channel.schedule_access(DecodedAddress(0, 4, 0, 1),
                                         False, 1000)  # bank 4 = group 1
        assert second.data_start == first.data_end

    def test_same_bank_run_paces_at_tccd_l(self):
        """A streaming run inside one bank leaves DDR4's tCCD_L bubbles."""
        channel = ddr4_channel()
        timing = channel.schedule_run(DecodedAddress(0, 0, 0, 0), 10,
                                      False, 0)
        ddr4 = ddr4_timing()
        expected = 9 * ddr4.tccd_l + ddr4.tburst
        assert timing.data_end - timing.data_start == expected

    def test_ddr3_unaffected(self):
        """DDR3 (one bank group, tCCD_L = tBURST) streams gaplessly."""
        channel = Channel(DramTiming(), DramOrganization(), scale=1)
        timing = channel.schedule_run(DecodedAddress(0, 0, 0, 0), 10,
                                      False, 0)
        assert timing.data_end - timing.data_start == 10 * 4

    def test_organization_preset(self):
        org = ddr4_organization()
        assert org.banks_per_rank == 16
        assert org.bank_groups == 4
        org.validate()

    def test_oram_burst_slower_per_cycle_on_ddr4_same_bank(self):
        """The bank-group penalty is why ORAM layouts should spread
        consecutive lines across groups on DDR4 — quantified here."""
        ddr3_channel = Channel(DramTiming(), DramOrganization(), scale=1)
        ddr4 = ddr4_channel()
        ddr3_run = ddr3_channel.schedule_run(DecodedAddress(0, 0, 0, 0),
                                             64, False, 0)
        ddr4_run = ddr4.schedule_run(DecodedAddress(0, 0, 0, 0), 64,
                                     False, 0)
        ddr3_cycles = ddr3_run.data_end - ddr3_run.data_start
        ddr4_cycles = ddr4_run.data_end - ddr4_run.data_start
        assert ddr4_cycles > ddr3_cycles  # in cycles
        # but DDR4's faster clock still wins in nanoseconds
        assert ddr4_cycles * ddr4_timing().tck_ns < \
            ddr3_cycles * DramTiming().tck_ns * 1.1
