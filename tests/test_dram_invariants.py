"""Property tests for DRAM timing invariants under random access streams.

These guard the event-driven model's physical sanity: data bursts on one
channel never overlap, CAS always trails ACT by tRCD, run scheduling is
burst-count-exact, and the coalesced run path agrees with per-line
scheduling on total bus occupancy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramOrganization, DramTiming
from repro.dram.address import DecodedAddress
from repro.dram.channel import Channel

TIMING = DramTiming()


def make_channel():
    return Channel(TIMING, DramOrganization(), scale=1)


address_strategy = st.builds(
    DecodedAddress,
    rank=st.integers(0, 7),
    bank=st.integers(0, 7),
    row=st.integers(0, 63),
    column=st.integers(0, 127),
)


class TestBurstInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(address_strategy, st.booleans(),
                              st.integers(0, 2000)),
                    min_size=2, max_size=60))
    def test_data_bursts_never_overlap(self, accesses):
        """The data bus is a serial resource: bursts must be disjoint."""
        channel = make_channel()
        intervals = []
        for address, is_write, earliest in accesses:
            timing = channel.schedule_access(address, is_write, earliest)
            intervals.append((timing.data_start, timing.data_end))
        intervals.sort()
        for (_, first_end), (second_start, _) in zip(intervals,
                                                     intervals[1:]):
            assert second_start >= first_end

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.tuples(address_strategy, st.booleans()),
                    min_size=1, max_size=40))
    def test_monotone_commitment(self, accesses):
        """With a fixed earliest time, CAS issue times never decrease —
        the channel commits state in schedule order."""
        channel = make_channel()
        last_data_start = -1
        for address, is_write in accesses:
            timing = channel.schedule_access(address, is_write, 0)
            assert timing.data_start > last_data_start
            last_data_start = timing.data_start

    @settings(max_examples=30, deadline=None)
    @given(address_strategy, st.integers(1, 100))
    def test_run_burst_count_exact(self, address, count):
        """A run of N lines occupies exactly N bursts of bus time."""
        channel = make_channel()
        columns = channel.organization.row_bytes // 64
        count = min(count, columns - address.column)
        timing = channel.schedule_run(address, count, False, 0)
        assert timing.data_end - timing.data_start == count * TIMING.tburst
        assert channel.counters.reads == count

    def test_run_rejects_row_crossing(self):
        channel = make_channel()
        with pytest.raises(ValueError):
            channel.schedule_run(DecodedAddress(0, 0, 0, 120), 20, False, 0)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 63), st.integers(1, 64), st.booleans())
    def test_run_equivalent_to_lines_in_bus_time(self, row, count,
                                                 is_write):
        """Coalesced runs must consume the same bus time as per-line
        scheduling — the optimization may not change the physics."""
        base = DecodedAddress(rank=0, bank=0, row=row, column=0)
        run_channel = make_channel()
        run_timing = run_channel.schedule_run(base, count, is_write, 0)

        line_channel = make_channel()
        last = None
        for column in range(count):
            address = DecodedAddress(rank=0, bank=0, row=row, column=column)
            last = line_channel.schedule_access(address, is_write, 0)
        assert run_timing.data_end == last.data_end
        assert (run_channel.counters.busy_cycles ==
                line_channel.counters.busy_cycles)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(address_strategy, min_size=1, max_size=30))
    def test_counters_match_operations(self, addresses):
        channel = make_channel()
        for address in addresses:
            channel.schedule_access(address, False, 0)
        counters = channel.counters
        assert counters.reads == len(addresses)
        assert (counters.row_hits + counters.row_misses +
                counters.row_conflicts) == len(addresses)
        assert counters.activates == (counters.row_misses +
                                      counters.row_conflicts)


class TestActPacing:
    def test_cas_trails_act_by_trcd(self):
        channel = make_channel()
        timing = channel.schedule_access(DecodedAddress(0, 0, 5, 0),
                                         False, 1000)
        # row miss: ACT at 1000, CAS no earlier than 1000 + tRCD
        assert timing.cas_issue >= 1000 + TIMING.trcd

    def test_many_banks_one_rank_respect_tfaw(self):
        """Eight immediate ACTs to one rank must span >= 2 tFAW windows."""
        channel = make_channel()
        timings = [channel.schedule_access(DecodedAddress(0, bank, 1, 0),
                                           False, 0)
                   for bank in range(8)]
        first_cas = timings[0].cas_issue
        last_cas = timings[-1].cas_issue
        assert last_cas - first_cas >= TIMING.tfaw
