"""Tests for the link recorder (the obliviousness observable)."""

from repro.core.commands import SdimmCommand
from repro.core.secure_buffer import LinkEvent, LinkRecorder


class TestLinkEvent:
    def test_shape_excludes_target(self):
        """The target SDIMM is a uniform function of a secret leaf; the
        shape (what must be pattern-independent) excludes it."""
        first = LinkEvent("up", SdimmCommand.ACCESS, 0, 64)
        second = LinkEvent("up", SdimmCommand.ACCESS, 3, 64)
        assert first.shape() == second.shape()

    def test_shape_distinguishes_command(self):
        access = LinkEvent("up", SdimmCommand.ACCESS, 0, 64)
        append = LinkEvent("up", SdimmCommand.APPEND, 0, 64)
        assert access.shape() != append.shape()

    def test_shape_distinguishes_size(self):
        small = LinkEvent("down", SdimmCommand.FETCH_RESULT, 0, 8)
        large = LinkEvent("down", SdimmCommand.FETCH_RESULT, 0, 64)
        assert small.shape() != large.shape()

    def test_events_frozen(self):
        event = LinkEvent("up", SdimmCommand.PROBE, 0, 0)
        try:
            event.sdimm = 5
            frozen = False
        except Exception:
            frozen = True
        assert frozen


class TestLinkRecorder:
    def test_records_both_directions(self):
        recorder = LinkRecorder()
        recorder.up(SdimmCommand.ACCESS, 1, 64)
        recorder.down(SdimmCommand.FETCH_RESULT, 1, 64)
        assert len(recorder) == 2
        assert recorder.events[0].direction == "up"
        assert recorder.events[1].direction == "down"

    def test_disabled_recorder_is_free(self):
        recorder = LinkRecorder(enabled=False)
        recorder.up(SdimmCommand.ACCESS, 1, 64)
        assert len(recorder) == 0

    def test_shapes_align_with_events(self):
        recorder = LinkRecorder()
        recorder.up(SdimmCommand.PROBE, 0, 0)
        recorder.down(None, 0, 32)
        shapes = recorder.shapes()
        assert shapes == [("up", SdimmCommand.PROBE, 0), ("down", None, 32)]

    def test_clear(self):
        recorder = LinkRecorder()
        recorder.up(SdimmCommand.PROBE, 0, 0)
        recorder.clear()
        assert len(recorder) == 0
