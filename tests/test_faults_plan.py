"""Tests for repro.faults.plan: seeded, serializable fault schedules."""

import pytest

from repro.faults.plan import (FAULT_BIT_FLIP, FAULT_BUFFER_STALL,
                               FAULT_LINK_DELAY, FAULT_LINK_DROP,
                               FAULT_LINK_DUPLICATE, FAULT_REPLAY,
                               FAULT_STUCK_CELL, INTEGRITY_KINDS,
                               LINK_KINDS, FaultPlan, FaultSpec,
                               merge_plans)


class TestFaultSpec:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSpec(access_index=0, kind="gamma-ray")

    def test_rejects_negative_access_index(self):
        with pytest.raises(ValueError):
            FaultSpec(access_index=-1, kind=FAULT_BIT_FLIP)

    def test_round_trip(self):
        spec = FaultSpec(access_index=7, kind=FAULT_LINK_DELAY, site=1,
                         read_ordinal=2, op_ordinal=3, delay_steps=5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_fills_defaults(self):
        spec = FaultSpec.from_dict({"access_index": 3,
                                    "kind": FAULT_BIT_FLIP})
        assert spec.site == 0
        assert spec.read_ordinal == 0
        assert not spec.persistent

    def test_kind_partition(self):
        """Every kind is integrity, link, or the stall kind — no overlap."""
        assert not (INTEGRITY_KINDS & LINK_KINDS)
        assert FAULT_BUFFER_STALL not in INTEGRITY_KINDS | LINK_KINDS


def generate(seed=11, **overrides):
    kwargs = dict(accesses=32, sites=2, bit_flips=2, replays=1,
                  stuck_cells=1, link_drops=1, link_duplicates=1,
                  link_delays=1, buffer_stalls=1)
    kwargs.update(overrides)
    return FaultPlan.generate(seed, **kwargs)


class TestFaultPlan:
    def test_generate_is_deterministic(self):
        assert generate() == generate()
        assert generate().digest() == generate().digest()

    def test_generate_varies_with_seed(self):
        assert generate(seed=11).digest() != generate(seed=12).digest()

    def test_digest_tracks_content(self):
        assert generate().digest() != generate(bit_flips=3).digest()

    def test_specs_come_out_sorted(self):
        plan = generate()
        assert list(plan.specs) == sorted(plan.specs)

    def test_round_trip(self):
        plan = generate()
        restored = FaultPlan.from_dict(plan.to_dict())
        assert restored == plan
        assert restored.digest() == plan.digest()

    def test_kind_filters_partition_the_plan(self):
        plan = generate()
        partition = (plan.integrity_specs + plan.link_specs
                     + plan.stall_specs)
        assert sorted(partition) == list(plan.specs)
        assert all(s.kind in INTEGRITY_KINDS for s in plan.integrity_specs)
        assert all(s.kind in LINK_KINDS for s in plan.link_specs)
        assert all(s.kind == FAULT_BUFFER_STALL for s in plan.stall_specs)

    def test_counts_land_in_the_plan(self):
        plan = generate()
        kinds = [spec.kind for spec in plan.specs]
        assert kinds.count(FAULT_BIT_FLIP) == 2
        assert kinds.count(FAULT_REPLAY) == 1
        assert kinds.count(FAULT_STUCK_CELL) == 1
        assert kinds.count(FAULT_LINK_DROP) == 1
        assert kinds.count(FAULT_LINK_DUPLICATE) == 1
        assert kinds.count(FAULT_LINK_DELAY) == 1
        assert kinds.count(FAULT_BUFFER_STALL) == 1

    def test_stuck_cells_are_persistent(self):
        plan = generate()
        for spec in plan.specs:
            assert spec.persistent == (spec.kind == FAULT_STUCK_CELL)

    def test_delayed_kinds_get_positive_delays(self):
        plan = generate()
        for spec in plan.specs:
            if spec.kind in (FAULT_LINK_DELAY, FAULT_BUFFER_STALL):
                assert spec.delay_steps >= 1
            else:
                assert spec.delay_steps == 0

    def test_generate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan.generate(1, accesses=0, sites=1)
        with pytest.raises(ValueError):
            FaultPlan.generate(1, accesses=1, sites=0)

    def test_generation_never_perturbs_protocol_streams(self):
        """Plans draw from their own named stream; two draws agree even
        when other DeterministicRng streams were consumed in between."""
        from repro.utils.rng import DeterministicRng

        first = generate()
        DeterministicRng(11, "position-map").randrange(1 << 20)
        assert generate() == first


class TestMergePlans:
    def test_union_is_sorted(self):
        a = generate(seed=1, link_drops=0, buffer_stalls=0)
        b = generate(seed=2, bit_flips=0, stuck_cells=0)
        merged = merge_plans([a, b])
        assert list(merged.specs) == sorted(a.specs + b.specs)
        assert merged.seed == a.seed

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_plans([])
