"""Adversarial fuzzing: random memory mutations must always be caught.

A property test plays the physical adversary: after an honest workload,
flip an arbitrary byte of an arbitrary ciphertext cell (or replay an old
cell) and check that continued operation raises — for the PMMAC store,
the Merkle store, and the fully-encrypted recursive hierarchy.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oram.integrity import EncryptedBucketStore, IntegrityError
from repro.oram.merkle import MerkleBucketStore
from repro.oram.path_oram import Op, PathOram
from repro.oram.recursive import RecursiveOram
from repro.utils.rng import DeterministicRng

KEY = b"fuzzing key 16b!"


def populated_oram(store, seed=3):
    oram = PathOram(levels=6, blocks_per_bucket=4, block_bytes=16,
                    stash_capacity=200,
                    rng=DeterministicRng(seed, "fuzz"), store=store)
    for address in range(16):
        oram.access(address, Op.WRITE, bytes([address]) * 16)
    return oram


class TestPmmacFuzz:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 62), st.integers(0, 10_000), st.integers(0, 255))
    def test_any_bit_flip_detected(self, bucket, offset, flip):
        store = EncryptedBucketStore(63, 4, 16, KEY)
        oram = populated_oram(store)
        cell = store.snapshot(bucket)
        if cell is None or flip == 0:
            return  # nothing stored there / identity flip: nothing to do
        ciphertext, _ = cell
        position = offset % len(ciphertext)
        mutated = (ciphertext[:position] +
                   bytes([ciphertext[position] ^ flip]) +
                   ciphertext[position + 1:])
        store.tamper(bucket, mutated)
        # detection fires the moment the tampered bucket is next read
        with pytest.raises(IntegrityError):
            store.read(bucket)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 62))
    def test_any_replay_detected(self, bucket):
        store = EncryptedBucketStore(63, 4, 16, KEY)
        oram = populated_oram(store)
        captured = store.snapshot(bucket)
        if captured is None:
            return
        # force the bucket to be rewritten, then replay the stale version
        for address in range(16):
            oram.access(address, Op.WRITE, bytes(16))
        if store.snapshot(bucket) == captured:
            return  # never rewritten: the replay is a no-op
        store.replay(bucket, captured)
        with pytest.raises(IntegrityError):
            store.read(bucket)


class TestMerkleFuzz:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 62), st.integers(0, 10_000), st.integers(1, 255))
    def test_any_bit_flip_detected(self, bucket, offset, flip):
        store = MerkleBucketStore(6, 4, 16, KEY)
        oram = populated_oram(store, seed=4)
        snapshot = store.snapshot(bucket)
        if snapshot is None:
            return
        (counter, ciphertext), _ = snapshot
        position = offset % len(ciphertext)
        mutated = (ciphertext[:position] +
                   bytes([ciphertext[position] ^ flip]) +
                   ciphertext[position + 1:])
        store.tamper(bucket, mutated)
        with pytest.raises(IntegrityError):
            store.read(bucket)


class TestEncryptedRecursion:
    def make(self):
        return RecursiveOram(data_blocks=256, block_bytes=64,
                             blocks_per_bucket=4, stash_capacity=200,
                             rng=DeterministicRng(7, "rec-enc"),
                             onchip_entries=4, encryption_key=KEY)

    def test_correct_end_to_end(self):
        oram = self.make()
        for address in range(0, 100, 7):
            oram.write(address, bytes([address % 256]) * 64)
        for address in range(0, 100, 7):
            assert oram.read(address) == bytes([address % 256]) * 64

    def test_every_level_encrypted(self):
        from repro.oram.integrity import EncryptedBucketStore
        oram = self.make()
        assert all(isinstance(level.store, EncryptedBucketStore)
                   for level in oram.orams)

    def test_posmap_level_tamper_detected(self):
        """Corrupting a *PosMap* tree (not data!) must also be caught."""
        oram = self.make()
        for address in range(40):
            oram.write(address, bytes(64))
        posmap_store = oram.orams[1].store
        target = None
        for bucket in range(posmap_store.bucket_count):
            if posmap_store.snapshot(bucket) is not None:
                target = bucket
                break
        assert target is not None
        ciphertext, _ = posmap_store.snapshot(target)
        posmap_store.tamper(target,
                            bytes([ciphertext[0] ^ 1]) + ciphertext[1:])
        with pytest.raises(IntegrityError):
            for address in range(200):
                oram.read(address % 40)
