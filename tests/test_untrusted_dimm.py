"""Security tests for the untrusted on-DIMM side of the SDIMM protocols.

The attack surface (Figure 2) includes the DRAM chips and the bus between
the secure buffer and those chips.  These tests check what a probe there
sees: ciphertext only (Independent with encryption), PMMAC detection of
on-DIMM tampering, and path-shaped bucket traces for Split.
"""

import pytest

from repro.core.independent import IndependentProtocol
from repro.core.split import SplitProtocol
from repro.oram.integrity import IntegrityError
from repro.oram.path_oram import Op


def payload(value):
    return bytes([value]) * 16


class TestEncryptedIndependentDimm:
    def make(self, **kwargs):
        return IndependentProtocol(global_levels=7, sdimm_count=2,
                                   block_bytes=16, stash_capacity=200,
                                   seed=21, encryption_key=b"dimm key 16byte",
                                   **kwargs)

    def test_correct_with_encryption(self):
        protocol = self.make()
        for address in range(20):
            protocol.write(address, payload(address))
        for address in range(20):
            assert protocol.read(address) == payload(address)

    def test_dimm_holds_only_ciphertext(self):
        protocol = self.make()
        secret = b"TOPSECRET!".ljust(16, b"\0")
        protocol.write(1, secret)
        for sdimm in protocol.sdimms:
            store = sdimm.oram.store
            for bucket in range(store.bucket_count):
                cell = store.snapshot(bucket)
                if cell is not None:
                    assert b"TOPSECRET!" not in cell[0]

    def test_on_dimm_tamper_detected(self):
        protocol = self.make()
        protocol.write(1, payload(1))
        # corrupt one written bucket on some SDIMM
        for sdimm in protocol.sdimms:
            store = sdimm.oram.store
            for bucket in range(store.bucket_count):
                cell = store.snapshot(bucket)
                if cell is not None:
                    ciphertext, _ = cell
                    store.tamper(bucket,
                                 bytes([ciphertext[0] ^ 1]) +
                                 ciphertext[1:])
                    break
        with pytest.raises(IntegrityError):
            for _ in range(300):
                protocol.read(1)

    def test_plain_store_by_default(self):
        """Without a key the buffers run plaintext (fast functional mode)."""
        protocol = IndependentProtocol(global_levels=7, sdimm_count=2,
                                       block_bytes=16, stash_capacity=200)
        from repro.oram.integrity import PlainBucketStore
        assert isinstance(protocol.sdimms[0].oram.store, PlainBucketStore)


class TestSplitDimmTrace:
    def make(self):
        return SplitProtocol(levels=6, ways=2, block_bytes=16,
                             stash_capacity=200, seed=5, record_trace=True)

    def test_trace_is_whole_paths(self):
        protocol = self.make()
        protocol.read(3)
        for buffer in protocol.buffers:
            kinds = [kind for kind, _ in buffer.bucket_trace]
            assert kinds == ["read"] * 6 + ["write"] * 6
            reads = [bucket for kind, bucket in buffer.bucket_trace
                     if kind == "read"]
            writes = [bucket for kind, bucket in buffer.bucket_trace
                      if kind == "write"]
            assert reads == writes
            assert reads[0] == 0  # root first

    def test_both_ways_see_identical_bucket_sequences(self):
        """Bit-slicing: each SDIMM touches the same buckets of its copy."""
        protocol = self.make()
        for address in range(10):
            protocol.write(address, payload(address))
        first, second = protocol.buffers
        assert first.bucket_trace == second.bucket_trace

    def test_trace_shape_independent_of_pattern(self):
        def trace_of(operations):
            protocol = self.make()
            for address, op, value in operations:
                if op is Op.WRITE:
                    protocol.access(address, op, payload(value))
                else:
                    protocol.access(address, op)
            return [kind for kind, _ in protocol.buffers[0].bucket_trace]

        hot = trace_of([(1, Op.READ, 0)] * 8)
        scan = trace_of([(address, Op.WRITE, address)
                         for address in range(8)])
        assert hot == scan

    def test_trace_off_by_default(self):
        protocol = SplitProtocol(levels=6, ways=2, block_bytes=16,
                                 stash_capacity=200)
        protocol.read(1)
        assert protocol.buffers[0].bucket_trace == []
