"""Tests for the PRF, counter-mode cipher, MACs, and session handshake."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto import (
    CertificateAuthority,
    CounterModeCipher,
    MacEngine,
    PmmacAuthenticator,
    Prf,
    establish_session,
)
from repro.crypto.mac import MacError
from repro.crypto.session import AuthenticationError, BufferIdentity

KEY_A = b"0123456789abcdef"
KEY_B = b"fedcba9876543210"


class TestPrf:
    def test_deterministic(self):
        prf = Prf(KEY_A)
        assert prf.evaluate(b"msg", 32) == prf.evaluate(b"msg", 32)

    def test_key_separation(self):
        assert Prf(KEY_A).evaluate(b"msg") != Prf(KEY_B).evaluate(b"msg")

    def test_message_separation(self):
        prf = Prf(KEY_A)
        assert prf.evaluate(b"a") != prf.evaluate(b"b")

    def test_rejects_short_key(self):
        with pytest.raises(ValueError):
            Prf(b"short")

    @given(st.integers(min_value=0, max_value=200))
    def test_output_length(self, length):
        assert len(Prf(KEY_A).evaluate(b"x", length)) == length

    def test_long_output_extends_prefix(self):
        prf = Prf(KEY_A)
        assert prf.evaluate(b"x", 100)[:32] == prf.evaluate(b"x", 32)

    def test_derive_key_distinct_labels(self):
        prf = Prf(KEY_A)
        assert prf.derive_key("up") != prf.derive_key("down")

    def test_evaluate_int_respects_width(self):
        prf = Prf(KEY_A)
        for bits in (1, 8, 31, 64):
            assert prf.evaluate_int(b"x", bits) < (1 << bits)


class TestCounterMode:
    @given(st.binary(max_size=256), st.integers(min_value=0, max_value=2**32),
           st.integers(min_value=0, max_value=2**32))
    def test_roundtrip(self, plaintext, nonce, counter):
        cipher = CounterModeCipher(KEY_A)
        ciphertext = cipher.encrypt(plaintext, nonce, counter)
        assert cipher.decrypt(ciphertext, nonce, counter) == plaintext

    def test_counter_changes_ciphertext(self):
        cipher = CounterModeCipher(KEY_A)
        block = b"secret block" * 4
        assert cipher.encrypt(block, 0, 1) != cipher.encrypt(block, 0, 2)

    def test_nonce_changes_ciphertext(self):
        cipher = CounterModeCipher(KEY_A)
        block = b"secret block" * 4
        assert cipher.encrypt(block, 1, 0) != cipher.encrypt(block, 2, 0)

    def test_wrong_counter_garbles(self):
        cipher = CounterModeCipher(KEY_A)
        ciphertext = cipher.encrypt(b"secret block", 0, 5)
        assert cipher.decrypt(ciphertext, 0, 6) != b"secret block"

    def test_pad_precomputable(self):
        cipher = CounterModeCipher(KEY_A)
        pad = cipher.pad(3, 9, 12)
        manual = bytes(p ^ k for p, k in zip(b"hello world!", pad))
        assert cipher.encrypt(b"hello world!", 3, 9) == manual


class TestMacEngine:
    def test_verify_accepts_valid(self):
        mac = MacEngine(KEY_A)
        tag = mac.tag(b"payload")
        mac.verify(b"payload", tag)

    def test_verify_rejects_tamper(self):
        mac = MacEngine(KEY_A)
        tag = mac.tag(b"payload")
        with pytest.raises(MacError):
            mac.verify(b"payloae", tag)

    def test_verify_rejects_wrong_key(self):
        tag = MacEngine(KEY_A).tag(b"payload")
        with pytest.raises(MacError):
            MacEngine(KEY_B).verify(b"payload", tag)


class TestPmmac:
    def test_roundtrip(self):
        auth = PmmacAuthenticator(KEY_A)
        tag = auth.tag(42, 7, b"bucket bytes")
        auth.verify(42, 7, b"bucket bytes", tag)

    def test_replay_detected(self):
        """A stale bucket (old counter) fails against the current counter."""
        auth = PmmacAuthenticator(KEY_A)
        stale_tag = auth.tag(42, 7, b"bucket bytes")
        with pytest.raises(MacError):
            auth.verify(42, 8, b"bucket bytes", stale_tag)

    def test_relocation_detected(self):
        """A bucket copied to another tree position fails."""
        auth = PmmacAuthenticator(KEY_A)
        tag = auth.tag(42, 7, b"bucket bytes")
        with pytest.raises(MacError):
            auth.verify(43, 7, b"bucket bytes", tag)


class TestSession:
    def test_handshake_agrees(self):
        authority = CertificateAuthority()
        cpu_side, buffer_side = establish_session(
            0, b"buffer-seed", b"cpu-seed", authority)
        ciphertext, tag = cpu_side.encrypt_upstream(b"ACCESS leaf=5")
        assert buffer_side.decrypt_upstream(ciphertext, tag, 0) == \
            b"ACCESS leaf=5"

    def test_downstream_direction(self):
        authority = CertificateAuthority()
        cpu_side, buffer_side = establish_session(
            1, b"buffer-seed", b"cpu-seed", authority)
        ciphertext, tag = buffer_side.encrypt_downstream(b"block data")
        assert cpu_side.decrypt_downstream(ciphertext, tag, 0) == b"block data"

    def test_counters_advance(self):
        authority = CertificateAuthority()
        cpu_side, buffer_side = establish_session(
            2, b"buffer-seed", b"cpu-seed", authority)
        first, _ = cpu_side.encrypt_upstream(b"same message")
        second, _ = cpu_side.encrypt_upstream(b"same message")
        assert first != second
        assert cpu_side.upstream_counter == 2

    def test_tampered_message_rejected(self):
        authority = CertificateAuthority()
        cpu_side, buffer_side = establish_session(
            3, b"buffer-seed", b"cpu-seed", authority)
        ciphertext, tag = cpu_side.encrypt_upstream(b"ACCESS leaf=5")
        corrupted = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
        with pytest.raises(MacError):
            buffer_side.decrypt_upstream(corrupted, tag, 0)

    def test_unknown_buffer_rejected(self):
        authority = CertificateAuthority()
        with pytest.raises(AuthenticationError):
            authority.lookup(99)

    def test_identity_is_frozen(self):
        identity = BufferIdentity(0, 123)
        with pytest.raises(Exception):
            identity.public_key = 456
