"""Tests for the backfilling link bus."""

import pytest

from repro.sim.bus import LinkBus


class TestLinkBusBasics:
    def test_block_occupies_burst_plus_command(self):
        bus = LinkBus(burst_cycles=8, command_cycles=1)
        start, end = bus.reserve_block(0)
        assert (start, end) == (0, 9)

    def test_serial_when_contended(self):
        bus = LinkBus(8)
        bus.reserve_block(0)
        start, end = bus.reserve_block(0)
        assert start == 9

    def test_lines_back_to_back(self):
        bus = LinkBus(8)
        start, end = bus.reserve_lines(0, 5)
        assert end - start == 40

    def test_zero_lines_is_free(self):
        bus = LinkBus(8)
        assert bus.reserve_lines(100, 0) == (100, 100)
        assert bus.busy_cycles == 0

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            LinkBus(0)
        with pytest.raises(ValueError):
            LinkBus(8).reserve_lines(0, -1)

    def test_counters(self):
        bus = LinkBus(8)
        bus.reserve_block(0)
        bus.reserve_lines(0, 3)
        bus.command_slot(0)
        assert bus.block_transfers == 1
        assert bus.line_transfers == 3
        assert bus.command_slots == 1
        assert bus.total_transfers == 4


class TestBackfill:
    def test_gap_before_future_reservation_usable(self):
        """A response reserved far ahead must not block an idle bus now."""
        bus = LinkBus(8)
        bus.reserve_block(1000)          # future response
        start, end = bus.reserve_block(0)  # new request, bus idle now
        assert start == 0

    def test_small_gap_respected(self):
        bus = LinkBus(8)
        bus.reserve_block(0)       # [0, 9)
        bus.reserve_block(12)      # [12, 21)
        # a 9-cycle block does not fit in [9, 12); lands after 21
        start, _ = bus.reserve_block(5)
        assert start == 21

    def test_exact_fit_gap(self):
        bus = LinkBus(8, command_cycles=1)
        bus.reserve_block(0)       # [0, 9)
        bus.reserve_block(18)      # [18, 27)
        start, end = bus.reserve_block(0)
        assert (start, end) == (9, 18)

    def test_free_at_reflects_last_interval(self):
        bus = LinkBus(8)
        bus.reserve_block(100)
        assert bus.free_at == 109

    def test_advance_prunes_but_preserves_future(self):
        bus = LinkBus(8)
        bus.reserve_block(0)
        bus.reserve_block(10_000)
        bus.advance(5_000)
        # the future reservation still blocks
        start, _ = bus.reserve_block(10_000)
        assert start == 10_009

    def test_many_backfills_keep_order_free(self):
        bus = LinkBus(4)
        ends = []
        for index in range(20):
            _, end = bus.reserve_block(index * 100)
            ends.append(end)
        # widely spaced requests never queue
        assert all(end - index * 100 == 5 for index, end in enumerate(ends))
