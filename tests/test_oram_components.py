"""Tests for buckets, the stash eviction planner, and position maps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.oram.bucket import DUMMY_TAG, Block, Bucket
from repro.oram.posmap import PositionMap
from repro.oram.stash import Stash
from repro.oram.tree import TreeGeometry
from repro.utils.rng import DeterministicRng


def block(address, leaf, size=16, fill=0xAB):
    return Block(address, leaf, bytes([fill]) * size)


class TestBucket:
    def test_insert_and_occupancy(self):
        bucket = Bucket(4, 16)
        assert bucket.occupancy == 0
        bucket.insert(block(1, 0))
        bucket.insert(block(2, 1))
        assert bucket.occupancy == 2
        assert not bucket.is_full

    def test_overflow_raises(self):
        bucket = Bucket(2, 16)
        bucket.insert(block(1, 0))
        bucket.insert(block(2, 0))
        with pytest.raises(OverflowError):
            bucket.insert(block(3, 0))

    def test_wrong_size_payload_rejected(self):
        bucket = Bucket(4, 16)
        with pytest.raises(ValueError):
            bucket.insert(Block(1, 0, b"short"))

    def test_clear_returns_blocks(self):
        bucket = Bucket(4, 16)
        bucket.insert(block(1, 0))
        bucket.insert(block(2, 1))
        removed = bucket.clear()
        assert sorted(item.address for item in removed) == [1, 2]
        assert bucket.occupancy == 0

    def test_serialize_constant_size(self):
        empty = Bucket(4, 16)
        full = Bucket(4, 16)
        for index in range(4):
            full.insert(block(index, index))
        assert len(empty.serialize()) == len(full.serialize())
        assert len(empty.serialize()) == empty.serialized_bytes

    @given(st.lists(st.tuples(st.integers(0, 2**40), st.integers(0, 2**20)),
                    max_size=4, unique_by=lambda pair: pair[0]))
    def test_serialize_roundtrip(self, contents):
        bucket = Bucket(4, 16)
        for address, leaf in contents:
            bucket.insert(block(address, leaf))
        restored = Bucket.deserialize(bucket.serialize(), 4, 16)
        original = {(item.address, item.leaf, item.data)
                    for item in bucket.blocks()}
        recovered = {(item.address, item.leaf, item.data)
                     for item in restored.blocks()}
        assert original == recovered

    def test_deserialize_rejects_bad_length(self):
        with pytest.raises(ValueError):
            Bucket.deserialize(b"\x00" * 10, 4, 16)

    def test_dummy_tag_is_reserved(self):
        assert DUMMY_TAG == 2**64 - 1


class TestStash:
    def test_add_get_remove(self):
        stash = Stash(10)
        stash.add(block(5, 2))
        assert 5 in stash
        assert stash.get(5).leaf == 2
        removed = stash.remove(5)
        assert removed.address == 5
        assert 5 not in stash

    def test_same_address_replaces(self):
        stash = Stash(10)
        stash.add(block(5, 2))
        stash.add(block(5, 7))
        assert len(stash) == 1
        assert stash.get(5).leaf == 7

    def test_peak_tracking(self):
        stash = Stash(10)
        for index in range(6):
            stash.add(block(index, 0))
        for index in range(6):
            stash.remove(index)
        assert stash.peak_occupancy == 6

    def test_over_capacity_flag(self):
        stash = Stash(2)
        stash.add(block(0, 0))
        stash.add(block(1, 0))
        assert not stash.over_capacity
        stash.add(block(2, 0))
        assert stash.over_capacity


class TestEvictionPlanner:
    def test_blocks_go_as_deep_as_possible(self):
        tree = TreeGeometry(4)
        stash = Stash(50)
        stash.add(block(1, 5))
        placement = stash.plan_eviction(tree, 5, bucket_capacity=4)
        # a block mapped to the accessed leaf lands in the leaf bucket
        assert placement[3][0].address == 1
        assert len(stash) == 0

    def test_respects_bucket_capacity(self):
        tree = TreeGeometry(4)
        stash = Stash(50)
        for index in range(6):
            stash.add(block(index, 5))
        placement = stash.plan_eviction(tree, 5, bucket_capacity=4)
        assert len(placement[3]) == 4
        assert all(len(blocks) <= 4 for blocks in placement.values())

    def test_divergent_blocks_stay_high(self):
        tree = TreeGeometry(4)
        stash = Stash(50)
        stash.add(block(1, 0))  # leftmost leaf
        placement = stash.plan_eviction(tree, 7, bucket_capacity=4)
        # paths to leaves 0 and 7 share only the root
        assert placement == {0: placement[0]}
        assert placement[0][0].address == 1

    def test_unplaceable_blocks_remain(self):
        tree = TreeGeometry(4)
        stash = Stash(50)
        for index in range(5):
            stash.add(block(index, 0))
        stash.plan_eviction(tree, 7, bucket_capacity=4)
        # root holds 4; the fifth block stays in the stash
        assert len(stash) == 1

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=8), st.data())
    def test_placement_legality(self, levels, data):
        """Every placed block must sit on the intersection of its own path
        and the eviction path — the correctness condition of Path ORAM."""
        tree = TreeGeometry(levels)
        rng = DeterministicRng(1, "t")
        stash = Stash(1000)
        count = data.draw(st.integers(0, 30))
        for index in range(count):
            stash.add(block(index, rng.random_leaf(tree.leaf_count)))
        leaf = data.draw(st.integers(0, tree.leaf_count - 1))
        placement = stash.plan_eviction(tree, leaf, bucket_capacity=4)
        for level, blocks in placement.items():
            bucket = tree.path_bucket(leaf, level)
            for placed in blocks:
                assert tree.on_path(bucket, placed.leaf)


class TestPositionMap:
    def test_lookup_is_stable(self):
        posmap = PositionMap(64, DeterministicRng(1, "p"))
        first = posmap.lookup(10)
        assert posmap.lookup(10) == first

    def test_remap_changes_distributionally(self):
        posmap = PositionMap(1024, DeterministicRng(1, "p"))
        initial = posmap.lookup(10)
        changed = sum(posmap.remap(10) != initial for _ in range(50))
        assert changed > 40

    def test_lookup_and_remap_returns_old(self):
        posmap = PositionMap(64, DeterministicRng(1, "p"))
        original = posmap.lookup(3)
        old, new = posmap.lookup_and_remap(3)
        assert old == original
        assert posmap.lookup(3) == new

    def test_leaves_in_range(self):
        posmap = PositionMap(37, DeterministicRng(1, "p"))
        for address in range(200):
            assert 0 <= posmap.lookup(address) < 37

    def test_uniformity(self):
        posmap = PositionMap(4, DeterministicRng(1, "p"))
        counts = [0, 0, 0, 0]
        for address in range(4000):
            counts[posmap.lookup(address)] += 1
        assert max(counts) < 1.25 * min(counts)

    def test_set_validates(self):
        posmap = PositionMap(8, DeterministicRng(1, "p"))
        posmap.set(1, 7)
        assert posmap.lookup(1) == 7
        with pytest.raises(ValueError):
            posmap.set(1, 8)

    def test_touched_addresses(self):
        posmap = PositionMap(8, DeterministicRng(1, "p"))
        posmap.lookup(1)
        posmap.lookup(2)
        posmap.lookup(1)
        assert posmap.touched_addresses == 2
