"""Tests for the channel address mapper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import DramOrganization
from repro.dram.address import AddressMapper, DecodedAddress


def make_mapper(scheme="row:rank:bank:col"):
    return AddressMapper(DramOrganization(), line_bytes=64, scheme=scheme)


class TestAddressMapper:
    def test_rejects_unknown_scheme(self):
        with pytest.raises(ValueError):
            make_mapper("banana")

    def test_capacity(self):
        mapper = make_mapper()
        assert mapper.lines_per_channel == 16 * 2**30 // 64

    def test_sequential_lines_share_row(self):
        mapper = make_mapper()
        first = mapper.decode(0)
        second = mapper.decode(1)
        assert first.same_row(second)
        assert second.column == first.column + 1

    def test_row_crossing_changes_bank(self):
        mapper = make_mapper()
        lines_per_row = DramOrganization().row_bytes // 64
        inside = mapper.decode(lines_per_row - 1)
        outside = mapper.decode(lines_per_row)
        assert not inside.same_row(outside)
        assert outside.bank == inside.bank + 1

    def test_decode_rejects_out_of_range(self):
        mapper = make_mapper()
        with pytest.raises(ValueError):
            mapper.decode(mapper.lines_per_channel)
        with pytest.raises(ValueError):
            mapper.decode(-1)

    @given(st.integers(min_value=0, max_value=16 * 2**30 // 64 - 1))
    def test_roundtrip(self, line):
        mapper = make_mapper()
        assert mapper.encode(mapper.decode(line)) == line

    @given(st.integers(min_value=0, max_value=16 * 2**30 // 64 - 1))
    def test_roundtrip_alternate_scheme(self, line):
        mapper = make_mapper("row:col:rank:bank")
        assert mapper.encode(mapper.decode(line)) == line

    def test_encode_rejects_oversized_field(self):
        mapper = make_mapper()
        with pytest.raises(ValueError):
            mapper.encode(DecodedAddress(rank=8, bank=0, row=0, column=0))

    def test_fields_within_bounds(self):
        mapper = make_mapper()
        org = DramOrganization()
        for line in range(0, mapper.lines_per_channel, 7919 * 64):
            decoded = mapper.decode(line)
            assert 0 <= decoded.rank < org.ranks_per_channel
            assert 0 <= decoded.bank < org.banks_per_rank
            assert 0 <= decoded.row < org.rows_per_bank
            assert 0 <= decoded.column < org.row_bytes // 64

    def test_bank_interleave_scheme_spreads_consecutive_lines(self):
        mapper = make_mapper("row:col:rank:bank")
        first = mapper.decode(0)
        second = mapper.decode(1)
        assert second.bank != first.bank
