"""Tests for repro.faults.injector: schedule-driven fault application."""

import pytest

from repro.faults.injector import FaultInjector, FaultyStore
from repro.faults.plan import (FAULT_BIT_FLIP, FAULT_REPLAY,
                               FAULT_STUCK_CELL, FaultPlan, FaultSpec)
from repro.oram.bucket import Block, Bucket
from repro.oram.integrity import (EncryptedBucketStore, IntegrityError,
                                  PlainBucketStore)
from repro.oram.merkle import MerkleBucketStore

KEY = b"0123456789abcdef"


def enc_store():
    return EncryptedBucketStore(15, 4, 16, key=KEY)


def merkle_store():
    return MerkleBucketStore(5, bucket_capacity=4, block_bytes=16, key=KEY)


def full_bucket(value=0xAA):
    bucket = Bucket(4, 16)
    bucket.insert(Block(1, 3, bytes([value]) * 16))
    return bucket


def faulted(store, *specs, seed=3):
    plan = FaultPlan(seed=seed, specs=tuple(sorted(specs)))
    injector = FaultInjector(plan)
    return injector, FaultyStore(injector, 0, store)


def spec(kind, access_index=0, read_ordinal=0, persistent=False):
    return FaultSpec(access_index=access_index, kind=kind, site=0,
                     read_ordinal=read_ordinal, persistent=persistent)


class TestBitFlip:
    def test_detected_then_heals_for_the_retry(self):
        injector, store = faulted(enc_store(), spec(FAULT_BIT_FLIP))
        store.write(3, full_bucket())
        injector.begin_access(0)
        with pytest.raises(IntegrityError):
            store.read(3)
        # the spec is consumed and the true cell restored: the recovery
        # layer's re-read sees clean, current data
        assert store.read(3).blocks()[0].data == b"\xaa" * 16
        summary = injector.summary()["integrity"]
        assert summary == {"scheduled": 1, "applied": 1, "vacuous": 0,
                           "detected": 1, "missed": 0, "rate": 1.0}

    def test_unwritten_cell_is_vacuous(self):
        injector, store = faulted(enc_store(), spec(FAULT_BIT_FLIP))
        injector.begin_access(0)
        assert store.read(3).occupancy == 0
        summary = injector.summary()["integrity"]
        assert summary["vacuous"] == 1
        assert summary["applied"] == 0
        assert summary["rate"] == 1.0

    def test_read_ordinal_targets_the_nth_read(self):
        injector, store = faulted(enc_store(),
                                  spec(FAULT_BIT_FLIP, read_ordinal=1))
        store.write(3, full_bucket())
        store.write(4, full_bucket(0xBB))
        injector.begin_access(0)
        assert store.read(3).occupancy == 1
        with pytest.raises(IntegrityError):
            store.read(4)

    def test_access_index_gates_arming(self):
        injector, store = faulted(enc_store(),
                                  spec(FAULT_BIT_FLIP, access_index=1))
        store.write(3, full_bucket())
        injector.begin_access(0)
        assert store.read(3).occupancy == 1
        injector.begin_access(1)
        with pytest.raises(IntegrityError):
            store.read(3)

    def test_store_without_hooks_is_vacuous(self):
        injector, store = faulted(PlainBucketStore(15, 4, 16),
                                  spec(FAULT_BIT_FLIP))
        store.write(3, full_bucket())
        injector.begin_access(0)
        assert store.read(3).occupancy == 1
        assert injector.summary()["integrity"]["vacuous"] == 1


class TestReplay:
    def test_stale_version_fails_verification(self):
        injector, store = faulted(enc_store(), spec(FAULT_REPLAY))
        store.write(3, full_bucket(0x11))
        store.write(3, full_bucket(0x22))
        injector.begin_access(0)
        with pytest.raises(IntegrityError):
            store.read(3)
        # healed: the current version is back for the retry
        assert store.read(3).blocks()[0].data == b"\x22" * 16
        assert injector.summary()["integrity"]["detected"] == 1

    def test_no_stale_version_is_vacuous(self):
        injector, store = faulted(enc_store(), spec(FAULT_REPLAY))
        store.write(3, full_bucket())
        injector.begin_access(0)
        assert store.read(3).occupancy == 1
        summary = injector.summary()["integrity"]
        assert summary["vacuous"] == 1
        assert summary["rate"] == 1.0


class TestStuckCell:
    def test_persists_across_writes(self):
        injector, store = faulted(
            enc_store(), spec(FAULT_STUCK_CELL, persistent=True))
        store.write(3, full_bucket())
        injector.begin_access(0)
        with pytest.raises(IntegrityError):
            store.read(3)
        # no heal: the retry fails too
        with pytest.raises(IntegrityError):
            store.read(3)
        # every write that lands in the stuck bank re-corrupts
        store.write(3, full_bucket(0x33))
        with pytest.raises(IntegrityError):
            store.read(3)
        summary = injector.summary()["integrity"]
        assert summary["detected"] == 1     # idempotent per scheduled fault
        assert summary["rate"] == 1.0

    def test_other_cells_unaffected(self):
        injector, store = faulted(
            enc_store(), spec(FAULT_STUCK_CELL, persistent=True))
        store.write(3, full_bucket())
        store.write(4, full_bucket(0x44))
        injector.begin_access(0)
        with pytest.raises(IntegrityError):
            store.read(3)
        assert store.read(4).blocks()[0].data == b"\x44" * 16


class TestMerkleTarget:
    def test_bit_flip_detected(self):
        injector, store = faulted(merkle_store(), spec(FAULT_BIT_FLIP))
        store.write(3, full_bucket())
        injector.begin_access(0)
        with pytest.raises(IntegrityError):
            store.read(3)
        assert store.read(3).blocks()[0].data == b"\xaa" * 16
        assert injector.summary()["integrity"]["rate"] == 1.0

    def test_replay_detected_by_hash_path(self):
        injector, store = faulted(merkle_store(), spec(FAULT_REPLAY))
        store.write(3, full_bucket(0x11))
        store.write(3, full_bucket(0x22))
        injector.begin_access(0)
        with pytest.raises(IntegrityError) as excinfo:
            store.read(3)
        assert excinfo.value.kind in ("hash", "root")
        assert store.read(3).blocks()[0].data == b"\x22" * 16


class TestLifecycle:
    def test_finalize_marks_unreached_specs_vacuous(self):
        injector, store = faulted(enc_store(),
                                  spec(FAULT_BIT_FLIP, access_index=5))
        store.write(3, full_bucket())
        injector.begin_access(0)
        store.read(3)
        injector.finalize()
        summary = injector.summary()["integrity"]
        assert summary == {"scheduled": 1, "applied": 0, "vacuous": 1,
                           "detected": 0, "missed": 0, "rate": 1.0}

    def test_empty_plan_is_invisible(self):
        injector, store = faulted(enc_store())
        store.write(3, full_bucket())
        injector.begin_access(0)
        assert store.read(3).occupancy == 1
        injector.finalize()
        for tier in ("integrity", "link", "stalls"):
            assert injector.summary()[tier]["scheduled"] == 0

    def test_delegates_unknown_attributes(self):
        inner = enc_store()
        _, store = faulted(inner)
        assert store.bucket_count == inner.bucket_count
