"""The regression gate: comparison semantics, CLI exit codes, and the
byte-identity contracts (ledger canonical dumps and the dashboard)."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.ledger import Ledger, make_record
from repro.obs.regress import (GATE_DESIGNS, WALL_TOLERANCE, compare_records,
                               latest_by_key, render_dashboard,
                               trajectory_summary)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TRAJECTORY = os.path.join(REPO_ROOT, "benchmarks", "results",
                          "perf_trajectory.jsonl")


def _gate_record(cycles=1000, wall_ms=10.0, design="freecursive",
                 digest="a" * 64, extra_measure=None):
    measure = {"execution_cycles": cycles, "wall_ms": wall_ms,
               "slo": {"count": 5}}
    if extra_measure:
        measure.update(extra_measure)
    return make_record("gate", {
        "point": {"design": design, "workload": "mcf"},
        "measure": measure, "config_digest": digest})


class TestCompareSemantics:
    def test_identical_records_pass(self):
        record = _gate_record()
        report = compare_records([record], [record])
        assert report.ok and report.compared_points == 1
        assert report.new_points == 0

    def test_cycle_drift_fails_in_both_directions(self):
        base = _gate_record(cycles=1000)
        slower = compare_records([base], [_gate_record(cycles=1001)])
        faster = compare_records([base], [_gate_record(cycles=999)])
        assert not slower.ok
        assert slower.findings[0].kind == "cycle-regression"
        assert not faster.ok     # stale trajectory must be re-recorded
        assert faster.findings[0].kind == "cycle-improvement"

    def test_wall_clock_is_tolerance_banded_not_exact(self):
        base = _gate_record(wall_ms=10.0)
        inside = compare_records([base], [_gate_record(wall_ms=24.0)])
        outside = compare_records([base], [_gate_record(wall_ms=26.0)])
        assert inside.ok
        assert not outside.ok
        assert outside.findings[0].kind == "wall-regression"
        wide = compare_records([base], [_gate_record(wall_ms=26.0)],
                               wall_tolerance=3.0)
        assert wide.ok

    def test_speedup_never_fails_the_gate(self):
        base = _gate_record(extra_measure={"speedup": 3.0})
        report = compare_records(
            [base], [_gate_record(extra_measure={"speedup": 0.1})])
        assert report.ok

    def test_wall_skipped_when_cpu_count_differs(self):
        base = _gate_record(wall_ms=10.0)
        base["host"]["cpu_count"] = 64    # host is not digest-protected
        report = compare_records([base], [_gate_record(wall_ms=9999.0)])
        assert report.ok                  # wall not comparable -> no fail
        kinds = [item.kind for item in report.findings]
        assert kinds == ["wall-skipped"]

    @pytest.mark.parametrize("caveat_on", ["baseline", "current", "both"])
    def test_wall_skipped_when_either_side_has_single_core_caveat(
            self, caveat_on):
        base_extra = {"single_core_caveat": caveat_on in ("baseline", "both"),
                      "speedup": 4.0}
        cur_extra = {"single_core_caveat": caveat_on in ("current", "both"),
                     "speedup": 0.5}
        base = _gate_record(wall_ms=10.0, extra_measure=base_extra)
        current = _gate_record(wall_ms=9999.0, extra_measure=cur_extra)
        report = compare_records([base], [current])
        assert report.ok     # wall band skipped entirely, nothing fails
        skips = [item for item in report.findings
                 if item.kind == "wall-skipped"]
        assert len(skips) == 1
        assert skips[0].metric == "measure.single_core_caveat"

    def test_caveat_false_on_both_sides_still_compares_wall(self):
        base = _gate_record(wall_ms=10.0,
                            extra_measure={"single_core_caveat": False})
        current = _gate_record(wall_ms=9999.0,
                               extra_measure={"single_core_caveat": False})
        report = compare_records([base], [current])
        assert not report.ok
        assert report.findings[0].kind == "wall-regression"

    def test_host_fact_keys_never_fail_exact_comparison(self):
        base = _gate_record(extra_measure={"single_core_caveat": True,
                                           "cpu_count": 1})
        current = _gate_record(extra_measure={"single_core_caveat": False,
                                              "cpu_count": 64})
        report = compare_records([base], [current])
        assert report.ok

    def test_only_shared_keys_compared(self):
        # schema growth: a metric the old baseline lacks must not fail
        old = _gate_record()
        new = _gate_record(extra_measure={"brand_new_metric": 7})
        assert compare_records([old], [new]).ok

    def test_config_drift_warns_but_passes(self):
        report = compare_records([_gate_record(digest="a" * 64)],
                                 [_gate_record(digest="b" * 64)])
        assert report.ok
        assert any(item.kind == "config-drift"
                   and item.severity == "warn"
                   for item in report.findings)

    def test_unknown_point_is_info(self):
        report = compare_records([_gate_record(design="freecursive")],
                                 [_gate_record(design="split-2")])
        assert report.ok and report.new_points == 1
        assert report.findings[0].kind == "new-point"

    def test_latest_record_per_key_wins(self):
        history = [_gate_record(cycles=900), _gate_record(cycles=1000)]
        assert latest_by_key(history)[
            list(latest_by_key(history))[0]]["core"]["measure"][
            "execution_cycles"] == 1000
        # gate baselines on the newest entry, older ones are history only
        assert compare_records(history, [_gate_record(cycles=1000)]).ok
        assert not compare_records(history, [_gate_record(cycles=900)]).ok


@pytest.fixture(scope="module")
def gate_cache(tmp_path_factory):
    return str(tmp_path_factory.mktemp("gate-cache"))


@pytest.fixture(autouse=True)
def _no_ambient_ledger(monkeypatch):
    monkeypatch.delenv("REPRO_LEDGER", raising=False)
    monkeypatch.delenv("REPRO_NO_LEDGER", raising=False)


class TestGateCli:
    def test_committed_trajectory_passes(self, gate_cache, capsys):
        code = main(["perf-gate", "--trajectory", TRAJECTORY,
                     "--cache-dir", gate_cache])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "perf-gate: PASS" in out
        assert f"{len(GATE_DESIGNS)} point(s) compared" in out

    def test_injected_regression_fails(self, gate_cache, tmp_path, capsys):
        records = Ledger(TRAJECTORY).read()
        assert records, "committed trajectory missing"
        doctored = Ledger(str(tmp_path / "doctored.jsonl"))
        doctored.append_all(records)
        victim = next(r for r in reversed(records)
                      if r["kind"] == "gate"
                      and r["core"]["point"]["design"] == "freecursive")
        core = json.loads(json.dumps(victim["core"]))
        core.pop("recorded_at", None)
        core["measure"]["execution_cycles"] += 500
        # rebuild so the digest matches — a hand-edited line would just
        # be skipped on read, which is itself the tamper-proofing
        doctored.append(make_record("gate", core))
        code = main(["perf-gate",
                     "--trajectory", str(tmp_path / "doctored.jsonl"),
                     "--cache-dir", gate_cache])
        out = capsys.readouterr().out
        assert code == 1, out
        assert "perf-gate: FAIL" in out
        assert "execution_cycles" in out

    def test_gate_appends_fresh_records_to_ledger(self, gate_cache,
                                                  tmp_path, capsys):
        ledger_path = str(tmp_path / "runs.jsonl")
        code = main(["perf-gate", "--trajectory", TRAJECTORY,
                     "--cache-dir", gate_cache, "--ledger", ledger_path])
        capsys.readouterr()
        assert code == 0
        appended = Ledger(ledger_path).read()
        assert len(appended) == len(GATE_DESIGNS)
        assert all(r["kind"] == "gate" for r in appended)


class TestByteIdentity:
    """The determinism contracts the ISSUE pins: canonical ledger dumps
    and the dashboard are byte-identical across --jobs and replays."""

    def test_sweep_ledger_canonical_dump_jobs_and_replay(self, tmp_path,
                                                         capsys):
        cache = str(tmp_path / "cache")
        dumps = []
        for index, jobs in enumerate(("1", "4", "1")):   # 3rd = replay
            ledger_path = str(tmp_path / f"ledger{index}.jsonl")
            code = main(["sweep", "freecursive", "--trace-length", "300",
                         "--jobs", jobs, "--cache-dir", cache,
                         "--ledger", ledger_path])
            assert code == 0
            dumps.append(Ledger(ledger_path).canonical_dump())
        capsys.readouterr()
        assert dumps[0] == dumps[1] == dumps[2]
        assert dumps[0]                       # non-empty: records exist
        assert "wall_ms" not in dumps[0]

    def test_dashboard_render_is_deterministic(self):
        records = Ledger(TRAJECTORY).read()
        first = render_dashboard(records)
        second = render_dashboard(records)
        assert first == second
        assert "<!DOCTYPE html>" in first
        assert "script" not in first.lower() or \
            "<script" not in first.lower()    # static, self-contained

    def test_gate_and_report_dashboards_identical(self, gate_cache,
                                                  tmp_path, capsys):
        gate_html = str(tmp_path / "gate.html")
        report_html = str(tmp_path / "report.html")
        assert main(["perf-gate", "--trajectory", TRAJECTORY,
                     "--cache-dir", gate_cache, "--html", gate_html]) == 0
        assert main(["perf-report", "--trajectory", TRAJECTORY,
                     "--html", report_html]) == 0
        capsys.readouterr()
        with open(gate_html, "rb") as first, open(report_html, "rb") as second:
            assert first.read() == second.read()

    def test_trajectory_summary_runs_on_committed_file(self, capsys):
        records = Ledger(TRAJECTORY).read()
        text = trajectory_summary(records)
        assert "freecursive" in text
