"""Golden-master regression net over the timing model.

The whole simulator is deterministic, so one short run per design pins
its exact cycle count.  Any change to timing parameters, scheduling
decisions, protocol message flows, or RNG stream layout moves these
numbers — which is the point: the figures in EXPERIMENTS.md are only as
stable as these values.  If you change the model *intentionally*,
regenerate the goldens (the command is in the module docstring's
companion note below) and re-run the figure benchmarks.

Regenerate with:

    python - <<'EOF'
    from repro.config import table2_config, DesignPoint as D
    from repro.sim.system import run_simulation
    for design, ch in [...]:
        r = run_simulation(table2_config(design, channels=ch),
                           'gromacs', trace_length=1500)
        print(design, ch, r.execution_cycles, r.accessoram_count)
    EOF
"""

import pytest

from repro.config import DesignPoint, table2_config
from repro.sim.system import run_simulation

GOLDENS = {
    (DesignPoint.NONSECURE, 1): (127_079, 0),
    (DesignPoint.FREECURSIVE, 1): (1_433_300, 777),
    (DesignPoint.INDEP_2, 1): (833_526, 777),
    (DesignPoint.SPLIT_2, 1): (953_418, 777),
    (DesignPoint.NONSECURE, 2): (122_604, 0),
    (DesignPoint.FREECURSIVE, 2): (839_460, 777),
    (DesignPoint.INDEP_4, 2): (541_512, 777),
    (DesignPoint.SPLIT_4, 2): (721_144, 777),
    (DesignPoint.INDEP_SPLIT, 2): (575_662, 777),
}


@pytest.mark.parametrize("design,channels", sorted(
    GOLDENS, key=lambda key: (key[1], key[0].value)))
def test_golden_cycles(design, channels):
    result = run_simulation(table2_config(design, channels=channels),
                            "gromacs", trace_length=1500)
    expected_cycles, expected_accessorams = GOLDENS[(design, channels)]
    assert result.execution_cycles == expected_cycles, (
        f"{design.value}/{channels}ch moved from {expected_cycles:,} to "
        f"{result.execution_cycles:,} cycles — if intentional, regenerate "
        f"the goldens and re-check EXPERIMENTS.md")
    assert result.accessoram_count == expected_accessorams


def test_goldens_tell_the_papers_story():
    """The pinned numbers themselves encode the headline orderings."""
    def cycles(design, channels):
        return GOLDENS[(design, channels)][0]

    # ORAM costs multiples (Figure 6)
    assert cycles(DesignPoint.FREECURSIVE, 1) > \
        8 * cycles(DesignPoint.NONSECURE, 1)
    # every SDIMM design beats Freecursive (Figures 8/9)
    for design, channels in ((DesignPoint.INDEP_2, 1),
                             (DesignPoint.SPLIT_2, 1),
                             (DesignPoint.INDEP_4, 2),
                             (DesignPoint.SPLIT_4, 2),
                             (DesignPoint.INDEP_SPLIT, 2)):
        assert cycles(design, channels) < \
            cycles(DesignPoint.FREECURSIVE, channels), design
    # the combined design is the best 2-channel secure option for this
    # (high-MLP) workload, short of raw INDEP-4 parallelism
    assert cycles(DesignPoint.INDEP_SPLIT, 2) < \
        cycles(DesignPoint.SPLIT_4, 2)
