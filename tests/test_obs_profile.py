"""Hotspot attribution: exclusive cycles, diffs, the wall-clock sampler."""

import time

import pytest

from repro.config import DesignPoint, small_config
from repro.obs.profile import (WallClockSampler, diff_hotspots,
                               exclusive_cycles, hotspots,
                               render_hotspot_diff, render_hotspots,
                               sample_wall_clock)
from repro.obs.tracer import CollectingTracer, TraceEvent
from repro.sim.system import run_simulation


def _span(name, lane, start, end, category="bus"):
    return TraceEvent("span", name, category, lane, start, end - start, {})


class TestExclusiveCycles:
    def test_innermost_span_owns_the_cycle(self):
        # outer [0, 100), inner [20, 50): inner owns its 30 cycles
        stats = exclusive_cycles([_span("outer", "lane", 0, 100),
                                  _span("inner", "lane", 20, 50)])
        assert stats[("lane", "outer")]["exclusive"] == 70
        assert stats[("lane", "outer")]["inclusive"] == 100
        assert stats[("lane", "inner")]["exclusive"] == 30

    def test_emission_order_breaks_same_start_ties(self):
        stats = exclusive_cycles([_span("first", "lane", 0, 50),
                                  _span("second", "lane", 0, 50)])
        assert stats[("lane", "second")]["exclusive"] == 50
        assert stats[("lane", "first")]["exclusive"] == 0

    def test_exclusive_sums_to_covered_cycles_per_lane(self):
        config = small_config(DesignPoint.FREECURSIVE)
        tracer = CollectingTracer()
        run_simulation(config, "mcf", trace_length=300, tracer=tracer)
        stats = exclusive_cycles(tracer.events)
        lanes = {}
        for (lane, _name), entry in stats.items():
            lanes[lane] = lanes.get(lane, 0) + entry["exclusive"]
        for lane, total in lanes.items():
            spans = [e for e in tracer.events
                     if e.kind == "span" and e.lane == lane]
            edges = sorted({edge for e in spans
                            for edge in (e.start, e.end)})
            covered = sum(right - left
                          for left, right in zip(edges, edges[1:])
                          if any(e.start <= left and e.end >= right
                                 for e in spans))
            assert total == covered, lane

    def test_category_filter_and_non_spans_ignored(self):
        events = [_span("a", "lane", 0, 10, category="bus"),
                  _span("b", "lane", 0, 10, category="dram"),
                  TraceEvent("instant", "x", "bus", "lane", 5, 0, {})]
        stats = exclusive_cycles(events, category="dram")
        assert set(stats) == {("lane", "b")}


class TestHotspots:
    def test_rows_sorted_and_truncated(self):
        events = [_span("big", "lane", 0, 100),
                  _span("small", "lane", 200, 210),
                  _span("mid", "lane", 300, 350)]
        rows = hotspots(events, top_n=2)
        assert [row["name"] for row in rows] == ["big", "mid"]
        assert hotspots(events, top_n=0) == hotspots(events, top_n=99)

    def test_deterministic_across_runs(self):
        config = small_config(DesignPoint.INDEP_2)
        tables = []
        for _ in range(2):
            tracer = CollectingTracer()
            run_simulation(config, "mcf", trace_length=300, tracer=tracer)
            tables.append(hotspots(tracer.events, top_n=10))
        assert tables[0] == tables[1]

    def test_render_is_plain_text_table(self):
        rows = hotspots([_span("path_access", "chan0", 0, 100)])
        text = render_hotspots(rows, title="t")
        assert "path_access" in text and "100.0%" in text


class TestDiff:
    def test_delta_ordering_and_one_sided_rows(self):
        before = hotspots([_span("gone", "lane", 0, 50),
                           _span("same", "lane", 100, 120)])
        after = hotspots([_span("new", "lane", 0, 80),
                          _span("same", "lane", 100, 120)])
        rows = diff_hotspots(before, after)
        assert [row["name"] for row in rows] == ["new", "gone", "same"]
        assert rows[0]["before"] == 0 and rows[0]["delta"] == 80
        assert rows[1]["after"] == 0 and rows[1]["delta"] == -50
        assert rows[2]["delta"] == 0
        text = render_hotspot_diff(rows)
        assert "+80" in text and "-50" in text


class TestWallClockSampler:
    def test_samples_a_busy_loop(self):
        sampler = WallClockSampler(interval_s=0.001)
        with sampler:
            deadline = time.monotonic() + 0.15
            while time.monotonic() < deadline:
                sum(range(2000))
        assert sampler.samples > 0
        rows = sampler.report(top_n=5)
        assert rows and rows[0]["samples"] >= rows[-1]["samples"]
        assert 0 < rows[0]["share"] <= 1.0

    def test_double_start_rejected_and_stop_idempotent(self):
        sampler = WallClockSampler(interval_s=0.01).start()
        with pytest.raises(RuntimeError):
            sampler.start()
        sampler.stop()
        sampler.stop()

    def test_validation(self):
        with pytest.raises(ValueError):
            WallClockSampler(interval_s=0)

    def test_sample_wall_clock_returns_function_result(self):
        result, rows = sample_wall_clock(lambda: 42, interval_s=0.005)
        assert result == 42
        assert isinstance(rows, list)
