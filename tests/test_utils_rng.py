"""Tests for deterministic component-scoped RNG streams."""

from repro.utils.rng import DeterministicRng, ZipfSampler, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_name_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")


class TestDeterministicRng:
    def test_same_stream_same_values(self):
        first = DeterministicRng(7, "leaf")
        second = DeterministicRng(7, "leaf")
        assert [first.random_leaf(1024) for _ in range(50)] == \
            [second.random_leaf(1024) for _ in range(50)]

    def test_different_names_diverge(self):
        first = DeterministicRng(7, "leaf")
        second = DeterministicRng(7, "drain")
        draws_a = [first.random_leaf(1 << 20) for _ in range(20)]
        draws_b = [second.random_leaf(1 << 20) for _ in range(20)]
        assert draws_a != draws_b

    def test_children_are_independent(self):
        parent = DeterministicRng(7, "root")
        child_a = parent.child("a")
        child_b = parent.child("b")
        assert [child_a.randrange(1000) for _ in range(10)] != \
            [child_b.randrange(1000) for _ in range(10)]

    def test_random_leaf_in_range(self):
        rng = DeterministicRng(3, "x")
        for _ in range(1000):
            assert 0 <= rng.random_leaf(37) < 37

    def test_bernoulli_extremes(self):
        rng = DeterministicRng(3, "x")
        assert not any(rng.bernoulli(0.0) for _ in range(100))
        assert all(rng.bernoulli(1.0) for _ in range(100))

    def test_bernoulli_rate(self):
        rng = DeterministicRng(3, "x")
        hits = sum(rng.bernoulli(0.3) for _ in range(20000))
        assert 0.27 < hits / 20000 < 0.33

    def test_random_bytes_length(self):
        rng = DeterministicRng(3, "x")
        assert len(rng.random_bytes(17)) == 17


class TestZipfSampler:
    def test_skew_toward_low_ranks(self):
        rng = DeterministicRng(11, "zipf")
        sampler = ZipfSampler(rng, 100, 1.0)
        draws = [sampler.sample() for _ in range(5000)]
        head = sum(1 for draw in draws if draw < 10)
        tail = sum(1 for draw in draws if draw >= 90)
        assert head > 4 * tail

    def test_in_range(self):
        rng = DeterministicRng(11, "zipf")
        sampler = ZipfSampler(rng, 13, 0.8)
        assert all(0 <= sampler.sample() < 13 for _ in range(500))

    def test_uniform_when_exponent_zero(self):
        rng = DeterministicRng(11, "zipf")
        sampler = ZipfSampler(rng, 10, 0.0)
        draws = [sampler.sample() for _ in range(10000)]
        counts = [draws.count(index) for index in range(10)]
        assert max(counts) < 2 * min(counts)
