"""SEC002 fixture (path contains ``core/``): none flagged."""


def structural_iteration(path_buckets, leaf):
    # Iterating a fixed-length structure is a fixed shape even when the
    # contents are secret; only computed bounds count.
    total = 0
    for bucket in path_buckets:
        total += bucket
    return total + (leaf - leaf)


def presence_test(override_new_leaf):
    if override_new_leaf is not None:       # presence, not content
        return override_new_leaf
    return 0


def public_branch(way_count, burst):
    if way_count > 2:                       # nothing secret involved
        return burst * way_count
    return burst


def untainted_loop(way_count):
    for way in range(way_count):            # public bound
        yield way
