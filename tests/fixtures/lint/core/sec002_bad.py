"""SEC002 fixture (path contains ``core/``): all flagged."""


def branch_on_leaf(leaf, limit):
    if leaf > limit:                        # flagged: direct vocabulary hit
        return 1
    return 0


def branch_on_derived(leaf):
    owner = leaf % 4                        # taints `owner`
    if owner == 0:                          # flagged: tainted name
        return "local"
    return "remote"


def loop_on_secret_bound(secret_count):
    total = 0
    for _ in range(secret_count):           # flagged: tainted range() bound
        total += 1
    return total


def while_on_plaintext(plaintext):
    while plaintext:                        # flagged: vocabulary hit
        plaintext = plaintext[1:]
    return plaintext


def ternary_on_taint(new_leaf, a, b):
    stays = new_leaf < 8                    # taints `stays`
    return a if stays else b                # flagged: tainted ternary


def annotated_secret(value):
    request = value                         # reprolint: secret
    if request:                             # flagged: annotation taint
        return 1
    return 0
