"""SEC002 fixture: one violation silenced per-line, one left audible."""


def justified(leaf):
    if leaf > 4:  # reprolint: disable=SEC002 -- fixture justification
        return 1
    return 0


def audible(leaf):
    if leaf > 4:                            # still flagged
        return 1
    return 0
