"""DET001 fixture: a file-level directive silences the whole family."""
# reprolint: disable-file=DET001 -- fixture: wall-clock tool, not simulation

import time


def stamp():
    return time.time()                      # suppressed by the file directive


def stamp_again():
    return time.time()                      # also suppressed
