"""DET002 fixture (path contains ``sim/``): all flagged."""


class Counters:
    def __init__(self, total, cpu_ratio):
        self.busy_cycles = 0
        self.busy_cycles = total / 2                  # flagged: true division
        self.idle_cycles = total * 0.5                # flagged: float literal
        self.ratio_cycles = float(cpu_ratio)          # flagged: float()

    def accumulate(self, latency):
        self.busy_cycles += latency / 4               # flagged: aug-assign /

    def report(self, result_cls, total):
        return result_cls(execution_cycles=total / 3)  # flagged: keyword
