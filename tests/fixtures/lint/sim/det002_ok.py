"""DET002 fixture (path contains ``sim/``): none flagged."""


class Counters:
    def __init__(self, total, tburst):
        self.busy_cycles = 0
        self.busy_cycles = total // 2                 # floor division
        self.idle_cycles = total * 3                  # integer multiply
        self.window_cycles = max(total, tburst)       # opaque, assumed int

    def accumulate(self, count, tburst):
        self.busy_cycles += count * tburst

    def mean_latency(self, total):
        # floats at the *reporting* boundary are fine: target name is not
        # cycle accounting.
        return total / max(1, self.busy_cycles)
