"""DET001 fixture: every statement below must be flagged."""

import os
import random
import time
import uuid
from datetime import datetime


def wall_clock():
    return time.time()                      # flagged: clock


def wall_clock_datetime():
    return datetime.now()                   # flagged: clock


def ambient_entropy():
    return os.urandom(16)                   # flagged: entropy


def ambient_uuid():
    return uuid.uuid4()                     # flagged: entropy


def global_random():
    return random.randint(0, 7)             # flagged: process-global RNG


def set_iteration(items):
    for item in set(items):                 # flagged: unordered iteration
        yield item


def set_literal_iteration():
    for item in {3, 1, 2}:                  # flagged: unordered iteration
        yield item


def set_comprehension(items):
    return [item for item in {i for i in items}]   # flagged: generator


def set_materialization(items):
    return list(set(items))                 # flagged: unordered order
