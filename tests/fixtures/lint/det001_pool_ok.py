"""Fixture: order-independent consumption of pool.imap_unordered.

All four shapes keep results independent of pool completion order and
must produce no findings.
"""


def append_then_sort(pool, run, tasks):
    payloads = []
    for index, payload in pool.imap_unordered(run, tasks):
        payloads.append(payload if index else payload)
        payloads.append((index, payload))
    return [entry for _, entry in sorted(payloads, key=lambda item: item[0])]


def merge_by_subscript(pool, run, tasks):
    slots = [None] * len(tasks)
    for index, payload in pool.imap_unordered(run, tasks):
        slots[index] = payload
    return slots


def merge_into_dict(pool, run, tasks):
    merged = {}
    for key, payload in pool.imap_unordered(run, tasks):
        merged[key] = payload
    return [merged[key] for key in sorted(merged)]


def ordered_imap_is_fine(pool, run, tasks):
    return list(pool.imap(run, tasks))
