"""LINT000 fixture: deliberately unparseable."""

def broken(:
    return 1
