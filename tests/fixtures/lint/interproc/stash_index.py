"""SEC004 fixture: secret-dependent addressing in stash code.

A subscript indexed by the leaf and a membership probe keyed on it —
both observable access patterns on the hot path.
"""


def lookup(table, leaf):
    return table[leaf]


def probe(occupied, leaf):
    if leaf in occupied:
        return True
    return False
