"""SEC003 fixture: secret conditional expression and secret loop bound."""


def pad(block, leaf, cipher):
    frame = cipher.seal(block) if leaf & 1 else cipher.seal_twice(block)
    return frame


def walk(leaf, store):
    out = []
    for level in range(leaf):
        out.append(store.fetch(level))
    return out
