"""SEC003 clean fixture: a secret threads through a helper that never
branches on it, and the only branch is on public state."""


def wrap(leaf, codec):
    return codec.seal(leaf)


def emit(leaf, codec, queue):
    frame = wrap(leaf, codec)
    if queue.full():
        queue.drop_oldest()
    queue.push(frame)
