"""SEC003 fixture (callee half): branches on its ``leaf`` parameter.

Imported by ``cross_module_caller.py``; the pair exercises taint
propagation across module boundaries inside one project build.
"""


def pick_bucket(leaf, buckets):
    total = 0
    for bucket in buckets:
        if bucket.low <= leaf:
            total += 1
    return total
