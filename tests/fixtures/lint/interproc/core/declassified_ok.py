"""SEC003 clean fixture: every branch is on declassified data.

``len()`` of a secret container, a fresh RNG draw, an encrypt result,
and a structural count (``n_leaves``) are all public; none of these
branches may be flagged.
"""


def admit(leaves, rng, session, n_leaves):
    if len(leaves) > 4:
        batch = leaves[:4]
    else:
        batch = leaves
    draw = rng.random_leaf(n_leaves)
    if draw == 0:
        draw = 1
    frame = session.encrypt_block(batch)
    if frame:
        return draw
    return 0
