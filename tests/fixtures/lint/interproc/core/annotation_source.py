"""SEC003 fixture: ``# reprolint: secret`` annotation as taint source.

The annotated value has no vocabulary name; only the annotation makes
it secret, and only interprocedural flow carries it into the branch.
"""


def threshold_of(weight):
    while weight > 16:
        weight //= 2
    return weight


def tune(raw):
    weight = raw.value  # reprolint: secret
    return threshold_of(weight)
