"""SEC003 fixture (caller half): passes a secret across a module edge."""

from cross_module_sink import pick_bucket


def serve(request, buckets):
    leaf = request.position
    return pick_bucket(leaf, buckets)
