"""SEC003 fixture: decrypt() result stored on self, branched on later.

The taint source is the ``decrypt*`` call convention, threaded through
an instance attribute between methods.
"""


class BlockHandler:
    def __init__(self, session):
        self.session = session
        self.payload = b""

    def receive(self, frame):
        self.payload = self.session.decrypt_block(frame)

    def classify(self):
        if self.payload[0]:
            return "hot"
        return "cold"
