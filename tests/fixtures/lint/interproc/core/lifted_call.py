"""SEC003 fixture: secret argument lifted into a branching callee.

Two findings: the in-place branch inside ``route_for`` and the lifted
finding at the ``dispatch`` call site that passes the secret in.
"""


def route_for(leaf):
    if leaf & 1:
        return "odd"
    return "even"


def dispatch(leaf, table):
    lane = route_for(leaf)
    return table[lane]
