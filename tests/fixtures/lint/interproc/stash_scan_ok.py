"""SEC004 clean fixture: the oblivious pattern — scan every slot,
select with data movement, never index by the secret."""


def oblivious_lookup(slots, leaf):
    hit = None
    for slot in slots:
        match = slot.block_id == leaf
        hit = slot if match else hit
    return hit
