"""SEC001 fixture: none of these may be flagged."""

import hmac

DUMMY_TAG = (1 << 64) - 1


def verify(message, tag, compute):
    return hmac.compare_digest(compute(message), tag)   # sanctioned


def length_check(tag):
    return len(tag) != 8            # length, not content


def sentinel_check(tag):
    return tag != DUMMY_TAG         # ALL_CAPS public sentinel


def counter_check(hash_checks):
    return hash_checks == 0         # int literal comparison


def presence_check(tag):
    return tag is None              # identity, not equality


def unrelated(machine, count):
    return machine == count         # no secret-ish head identifier
