"""DET001 fixture: path contains ``crypto/`` so the rule never runs."""

import os


def entropy():
    return os.urandom(16)                   # exempt by path scope
