"""SEC001 fixture: every construct below must be flagged."""


class Verifier:
    def tag(self, message):
        return message[:8]

    def verify_direct(self, message, tag):
        if self.tag(message) != tag:            # flagged: != on a tag
            raise ValueError("bad tag")

    def verify_equality(self, expected_mac, presented_mac):
        return expected_mac == presented_mac    # flagged: == on MACs

    def verify_digest(self, payload, digest):
        computed_digest = payload[:16]
        if computed_digest == digest:           # flagged: == on digests
            return True
        return False

    def verify_chain(self, stored_hash, recomputed_hash, ok):
        # flagged: chained comparison touching hashes
        return ok == (stored_hash == recomputed_hash)
