"""DET001 fixture: none of these may be flagged."""

import random


def seeded_instance(seed):
    return random.Random(seed).randint(0, 7)    # instance RNG is fine


def sorted_set(items):
    for item in sorted(set(items)):             # sorted first
        yield item


def membership(items, needle):
    return needle in set(items)                 # membership, not iteration


def dict_iteration(table):
    for key in table:                           # dicts preserve order
        yield key
