"""Fixture: order-dependent consumption of pool.imap_unordered.

Every function here leaks pool completion order — which depends on host
scheduling — into its result.  Expected findings: 3 (one per function).
"""


def materialize_list(pool, run, work):
    return list(pool.imap_unordered(run, work))


def materialize_tuple(pool, run, work):
    return tuple(pool.imap_unordered(run, work))


def append_without_reorder(pool, run, work):
    results = []
    for payload in pool.imap_unordered(run, work):
        results.append(payload)
    return results
