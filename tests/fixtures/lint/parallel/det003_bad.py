"""DET003 fixture: pool fan-out whose worker touches module globals and
whose fold depends on arrival order."""

_SCRATCH = {}


def run_point(spec):
    _SCRATCH[spec.key] = spec.value
    return spec.value


def sweep(pool, specs):
    total = 0
    for value in pool.imap_unordered(run_point, specs):
        total += total + value
    return total
