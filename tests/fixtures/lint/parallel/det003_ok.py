"""DET003 clean fixture: a pure worker and an order-insensitive merge."""


def run_point(spec):
    return (spec.index, spec.value)


def sweep(pool, specs):
    results = sorted(pool.imap_unordered(run_point, specs))
    return [value for _, value in results]
