"""Tests for the morphed (non-secure) SDIMM mode of Section III-A.4."""

import pytest

from repro.config import DesignPoint, table2_config
from repro.sim.events import EventQueue
from repro.sim.system import build_backend


def make_backend():
    events = EventQueue()
    backend = build_backend(table2_config(DesignPoint.INDEP_2, channels=1),
                            events)
    return backend, events


class TestMorphMode:
    def test_plain_access_completes(self):
        backend, events = make_backend()
        completions = []
        backend.submit_plain(123, 0, False, completions.append)
        events.run()
        assert len(completions) == 1
        assert completions[0] > 0

    def test_plain_access_is_cheap(self):
        """A morphed access costs DRAM latency plus two link messages —
        orders of magnitude below an accessORAM."""
        backend, events = make_backend()
        plain = []
        backend.submit_plain(123, 0, False, plain.append)
        events.run()

        oram_backend, oram_events = make_backend()
        oram = []
        oram_backend.submit(123, 0, False, oram.append)
        oram_events.run()
        assert plain[0] < oram[0] / 10

    def test_plain_writes_posted(self):
        backend, events = make_backend()
        backend.submit_plain(55, 0, True)
        events.run()
        writes = sum(channel.counters.writes
                     for channel in backend.channels)
        assert writes == 1

    def test_plain_and_secure_coexist(self):
        """Morphing per-request: secure and plain traffic interleave on the
        same devices without deadlock or miscount."""
        backend, events = make_backend()
        completions = []
        for index in range(6):
            backend.submit(index << 12, 0, False, completions.append)
            backend.submit_plain(index, 0, False, completions.append)
        events.run()
        assert len(completions) == 12
        assert backend.counters.accessorams >= 6

    def test_plain_uses_link_messages(self):
        backend, events = make_backend()
        before = backend.buses[0].block_transfers
        backend.submit_plain(1, 0, False, lambda t: None)
        events.run()
        assert backend.buses[0].block_transfers == before + 2
