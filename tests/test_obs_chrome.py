"""Chrome trace-event export: structure and byte-level determinism."""

import json

from repro.config import DesignPoint, small_config
from repro.obs.chrome import (chrome_trace_events, render_chrome_trace,
                              write_chrome_trace)
from repro.obs.tracer import CollectingTracer
from repro.sim.system import run_simulation


def _collect(trace_length=500, seed=2018):
    tracer = CollectingTracer()
    config = small_config(DesignPoint.INDEP_2, seed=seed)
    run_simulation(config, "mcf", trace_length=trace_length,
                   trace_seed=seed, tracer=tracer)
    return tracer


class TestChromeStructure:
    def test_metadata_names_every_lane(self):
        tracer = CollectingTracer()
        tracer.span("work", "cat", "beta", 0, 4)
        tracer.counter("depth", "cat", "alpha", 1, 2)
        tracer.instant("ping", "cat", "beta", 2)
        events = chrome_trace_events(tracer.events)
        metadata = [e for e in events if e["ph"] == "M"]
        assert metadata[0]["args"]["name"] == "repro"
        # lanes get tids in sorted order, stable across runs
        named = {e["args"]["name"]: e["tid"] for e in metadata[1:]}
        assert named == {"alpha": 1, "beta": 2}
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "C", "i"}
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["name"] == "alpha:depth"
        assert counter["args"]["value"] == 2

    def test_span_fields(self):
        tracer = CollectingTracer()
        tracer.span("PATH_READ", "protocol", "sdimm0", 100, 160, lines=13)
        span = chrome_trace_events(tracer.events)[-1]
        assert span == {"ph": "X", "pid": 1, "tid": 1, "name": "PATH_READ",
                        "cat": "protocol", "ts": 100, "dur": 60,
                        "args": {"lines": 13}}

    def test_document_is_valid_json_with_header(self):
        tracer = _collect(trace_length=300)
        document = json.loads(render_chrome_trace(tracer.events))
        assert document["otherData"]["generator"] == "repro.obs"
        assert len(document["traceEvents"]) > len(tracer.events)

    def test_write_returns_event_count(self, tmp_path):
        tracer = CollectingTracer()
        tracer.instant("x", "c", "l", 0)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), tracer.events)
        # process metadata + one lane metadata + the instant itself
        assert count == 3
        assert path.read_text().endswith("\n")


class TestTraceDeterminism:
    def test_same_config_same_seed_byte_identical(self):
        # The DET001 contract end-to-end: two independent runs of the same
        # (config, seed) must export the exact same bytes.
        first = render_chrome_trace(_collect().events)
        second = render_chrome_trace(_collect().events)
        assert first == second

    def test_different_seed_differs(self):
        first = render_chrome_trace(_collect(seed=2018).events)
        second = render_chrome_trace(_collect(seed=2019).events)
        assert first != second

    def test_timing_lanes_cover_the_design(self):
        # Independent's adversary-visible channel is the link bus; the
        # path shuffles live on the per-SDIMM lanes behind it.
        tracer = _collect(trace_length=400)
        lanes = set(tracer.lanes())
        assert "cpu" in lanes
        assert any(lane.startswith("bus") for lane in lanes)
        assert any(lane.startswith("sdimm") for lane in lanes)
