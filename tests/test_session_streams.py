"""Stream-level tests for the secure session (long-haul consistency)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.session import CertificateAuthority, establish_session


def make_pair(seed=b"stream-seed"):
    authority = CertificateAuthority()
    return establish_session(0, seed, b"cpu-" + seed, authority)


class TestSessionStreams:
    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=128), min_size=1,
                    max_size=30))
    def test_upstream_stream_roundtrips(self, messages):
        cpu, buffer = make_pair()
        for index, message in enumerate(messages):
            ciphertext, tag = cpu.encrypt_upstream(message)
            assert buffer.decrypt_upstream(ciphertext, tag, index) == message

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.binary(min_size=1, max_size=128), min_size=1,
                    max_size=30))
    def test_bidirectional_interleaving(self, messages):
        cpu, buffer = make_pair()
        for index, message in enumerate(messages):
            up_ct, up_tag = cpu.encrypt_upstream(message)
            assert buffer.decrypt_upstream(up_ct, up_tag, index) == message
            down_ct, down_tag = buffer.encrypt_downstream(message[::-1])
            assert cpu.decrypt_downstream(down_ct, down_tag,
                                          index) == message[::-1]

    def test_counters_track_message_count(self):
        cpu, buffer = make_pair()
        for _ in range(17):
            cpu.encrypt_upstream(b"x")
        assert cpu.upstream_counter == 17
        assert buffer.downstream_counter == 0

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=1, max_size=64))
    def test_identical_messages_never_repeat_ciphertext(self, message):
        cpu, _ = make_pair()
        seen = set()
        for _ in range(10):
            ciphertext, _ = cpu.encrypt_upstream(message)
            assert ciphertext not in seen
            seen.add(ciphertext)


class TestDesignComparisonHelper:
    def test_runs_requested_designs(self):
        from repro.config import DesignPoint, table2_config
        from repro.sim.system import run_design_comparison

        results = run_design_comparison(
            (DesignPoint.NONSECURE, DesignPoint.FREECURSIVE),
            "gromacs", channels=1,
            config_factory=lambda design, channels: table2_config(
                design, channels=channels),
            trace_length=800)
        assert set(results) == {DesignPoint.NONSECURE,
                                DesignPoint.FREECURSIVE}
        assert results[DesignPoint.FREECURSIVE].execution_cycles > \
            results[DesignPoint.NONSECURE].execution_cycles
