"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_designs_listed(self, capsys):
        assert main(["designs"]) == 0
        output = capsys.readouterr().out
        assert "indep-split" in output
        assert "freecursive" in output

    def test_workloads_listed(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "gromacs" in output
        assert "MiB" in output

    def test_unknown_design_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "warp-drive", "mcf"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_help_strings(self):
        parser = build_parser()
        assert parser.prog == "repro"


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", "nonsecure", "gromacs",
                     "--trace-length", "800"]) == 0
        output = capsys.readouterr().out
        assert "execution cycles" in output
        assert "memory energy" in output

    def test_compare_single_channel(self, capsys):
        assert main(["compare", "gromacs", "--trace-length", "600"]) == 0
        output = capsys.readouterr().out
        assert "freecursive" in output
        assert "indep-2" in output
        assert "split-2" in output

    def test_overflow(self, capsys):
        assert main(["overflow", "--steps", "5000"]) == 0
        output = capsys.readouterr().out
        assert "Figure 13a" in output
        assert "Figure 13b" in output

    def test_trace_generation(self, tmp_path, capsys):
        output_file = str(tmp_path / "trace.txt")
        assert main(["trace", "mcf", output_file, "--length", "50"]) == 0
        from repro.workloads.trace import load_trace
        assert len(load_trace(output_file)) == 50

    def test_simulate_trace_file(self, tmp_path, capsys):
        trace = str(tmp_path / "t.txt")
        assert main(["trace", "gromacs", trace, "--length", "400"]) == 0
        capsys.readouterr()
        assert main(["simulate", "freecursive", "--trace-file", trace]) == 0
        output = capsys.readouterr().out
        assert "execution cycles" in output

    def test_coresident(self, capsys):
        assert main(["coresident", "--requests", "30"]) == 0
        output = capsys.readouterr().out
        assert "freecursive" in output
        assert "vs idle" in output

    def test_simulate_json(self, capsys):
        import json

        assert main(["simulate", "nonsecure", "gromacs",
                     "--trace-length", "800", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["design"] == "nonsecure"
        assert summary["memory_energy_pj"] > 0


class TestFaultsCommand:
    ARGS = ["faults", "--design", "independent", "--accesses", "32",
            "--stuck-cells", "1", "--no-cache"]

    def test_campaign_detects_everything(self, capsys):
        assert main(self.ARGS) == 0
        output = capsys.readouterr().out
        assert "independent" in output
        assert "1.00" in output

    def test_json_reports(self, capsys):
        import json

        assert main(self.ARGS + ["--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert len(reports) == 1
        assert reports[0]["all_detected"] is True

    def test_report_file_is_replay_stable(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(self.ARGS + ["--report", str(first)]) == 0
        assert main(self.ARGS + ["--report", str(second)]) == 0
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_seed_sweep_runs_each_seed(self, capsys):
        assert main(["faults", "--design", "split", "--accesses", "24",
                     "--seeds", "3", "5", "--no-cache"]) == 0
        output = capsys.readouterr().out
        assert output.count("split") == 2

    def test_audit_trace_with_faults_flag_parses(self):
        args = build_parser().parse_args(["audit-trace", "--with-faults"])
        assert args.with_faults
