"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_designs_listed(self, capsys):
        assert main(["designs"]) == 0
        output = capsys.readouterr().out
        assert "indep-split" in output
        assert "freecursive" in output

    def test_workloads_listed(self, capsys):
        assert main(["workloads"]) == 0
        output = capsys.readouterr().out
        assert "gromacs" in output
        assert "MiB" in output

    def test_unknown_design_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "warp-drive", "mcf"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_parser_help_strings(self):
        parser = build_parser()
        assert parser.prog == "repro"


class TestCommands:
    def test_simulate(self, capsys):
        assert main(["simulate", "nonsecure", "gromacs",
                     "--trace-length", "800"]) == 0
        output = capsys.readouterr().out
        assert "execution cycles" in output
        assert "memory energy" in output

    def test_compare_single_channel(self, capsys):
        assert main(["compare", "gromacs", "--trace-length", "600"]) == 0
        output = capsys.readouterr().out
        assert "freecursive" in output
        assert "indep-2" in output
        assert "split-2" in output

    def test_overflow(self, capsys):
        assert main(["overflow", "--steps", "5000"]) == 0
        output = capsys.readouterr().out
        assert "Figure 13a" in output
        assert "Figure 13b" in output

    def test_trace_generation(self, tmp_path, capsys):
        output_file = str(tmp_path / "trace.txt")
        assert main(["trace", "mcf", output_file, "--length", "50"]) == 0
        from repro.workloads.trace import load_trace
        assert len(load_trace(output_file)) == 50

    def test_simulate_trace_file(self, tmp_path, capsys):
        trace = str(tmp_path / "t.txt")
        assert main(["trace", "gromacs", trace, "--length", "400"]) == 0
        capsys.readouterr()
        assert main(["simulate", "freecursive", "--trace-file", trace]) == 0
        output = capsys.readouterr().out
        assert "execution cycles" in output

    def test_coresident(self, capsys):
        assert main(["coresident", "--requests", "30"]) == 0
        output = capsys.readouterr().out
        assert "freecursive" in output
        assert "vs idle" in output

    def test_simulate_json(self, capsys):
        import json

        assert main(["simulate", "nonsecure", "gromacs",
                     "--trace-length", "800", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["design"] == "nonsecure"
        assert summary["memory_energy_pj"] > 0
