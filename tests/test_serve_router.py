"""The sharded serving tier end to end: determinism, folding, the CLI.

The ISSUE-level guarantee mirrors the sweep engine's: the aggregate
sharded report is **byte-identical** for any ``--jobs`` value, across
warm and cold pools, and across cached replays — and the per-shard
fan-out folds into sections :func:`repro.obs.ledger.serve_core` can
consume unchanged.
"""

import json

import pytest

import repro.parallel.sweep as sweep_module
from repro.cli import main
from repro.parallel.cache import RunCache
from repro.serve import (ShardSpec, canonical_json, fold_shard_reports,
                         run_shard, run_sharded, run_sharded_sweep,
                         sharded_cache_key)

SMALL = dict(levels=6, requests=96, capacity=16, batch=4, rate=0.02,
             seed=2018, shards=2, subtrees=8)


def spec(**overrides):
    merged = dict(SMALL)
    merged.update(overrides)
    return ShardSpec(**merged)


class TestDeterminism:
    def test_parallel_is_byte_identical_to_serial(self):
        sweep_module.shutdown_pools()
        point = spec(shards=4, subtrees=16)
        serial = canonical_json(run_sharded(point, jobs=1))
        parallel = canonical_json(run_sharded(point, jobs=4))
        assert parallel == serial
        # and again on the now-warm pool
        warm = canonical_json(run_sharded(point, jobs=4))
        assert warm == serial
        sweep_module.shutdown_pools()

    def test_cached_replay_is_byte_identical(self, tmp_path):
        cache = RunCache(str(tmp_path / "runs"))
        point = spec()
        meta = []
        fresh = run_sharded(point, jobs=2, cache=cache, meta=meta)
        replay = run_sharded(point, jobs=1, cache=cache, meta=meta)
        assert canonical_json(fresh) == canonical_json(replay)
        assert [entry["from_cache"] for entry in meta] == [False, True]
        sweep_module.shutdown_pools()

    def test_cache_key_depends_on_shard_geometry(self):
        fingerprint = "f" * 64
        assert sharded_cache_key(spec(), fingerprint=fingerprint) != \
            sharded_cache_key(spec(shards=4, subtrees=16),
                              fingerprint=fingerprint)
        assert sharded_cache_key(spec(), fingerprint=fingerprint) != \
            sharded_cache_key(spec(quarantined=(0,)),
                              fingerprint=fingerprint)

    def test_sweep_preserves_submission_order(self):
        points = [spec(rate=0.01), spec(rate=0.03)]
        reports = run_sharded_sweep(points, jobs=1)
        assert [report["spec"]["rate"] for report in reports] == \
            [0.01, 0.03]


class TestFolding:
    def test_totals_are_the_shard_sums(self):
        point = spec()
        report = run_sharded(point, jobs=1)
        assert len(report["shards"]) == point.shards
        for key in ("offered", "admitted", "completed", "shed",
                    "accesses"):
            assert report["totals"][key] == sum(
                shard["totals"][key] for shard in report["shards"])
        assert report["totals"]["offered"] == point.requests

    def test_fold_is_insensitive_to_payload_arrival_order(self):
        point = spec()
        payloads = [(shard, run_shard(point, shard))
                    for shard in range(point.shards)]
        forward = fold_shard_reports(point, payloads)
        reversed_ = fold_shard_reports(point, list(reversed(payloads)))
        assert canonical_json(forward) == canonical_json(reversed_)

    def test_aggregate_sojourn_covers_all_completions(self):
        report = run_sharded(spec(), jobs=1)
        assert report["sojourn"]["aggregate"]["count"] == \
            report["totals"]["completed"]

    def test_plan_section_names_every_subtree(self):
        point = spec(shards=4, subtrees=16)
        report = run_sharded(point, jobs=1)
        assert len(report["plan"]["assignments"]) == point.subtrees
        assert sum(report["plan"]["shares"]) == pytest.approx(1.0)

    def test_serve_core_consumes_shard_and_aggregate_reports(self):
        from repro.obs.ledger import serve_core

        report = run_sharded(spec(), jobs=1)
        aggregate = serve_core(report, fingerprint="f" * 64)
        assert aggregate["measure"]["totals"] == report["totals"]
        assert aggregate["measure"]["utilization"] == \
            report["service"]["utilization"]
        for shard_report in report["shards"]:
            core = serve_core(shard_report, fingerprint="f" * 64)
            assert core["measure"]["slo"]["count"] == \
                shard_report["totals"]["completed"]

    def test_metrics_fold_across_shards(self):
        point = spec(shards=4, subtrees=16)
        report = run_sharded(point, jobs=1)
        counters = report["metrics"]["counters"]
        assert counters["shard/routed"] == point.requests


class TestQuarantine:
    def test_degraded_mode_is_reported_honestly(self):
        point = spec(quarantined=(1,))
        report = run_sharded(point, jobs=2)
        sweep_module.shutdown_pools()
        degraded = report["degraded"]
        assert degraded["quarantined"] == [1]
        assert degraded["degraded_shards"] == 1
        assert degraded["degraded_accesses"] == \
            report["shards"][1]["totals"]["accesses"] > 0
        # degraded traffic still completes and stays depth-bounded
        assert report["queue"]["depth_bounded"] is True
        assert report["totals"]["completed"] == report["totals"]["admitted"]

    def test_quarantine_changes_data_not_shape(self):
        healthy = run_sharded(spec(), jobs=1)
        sick = run_sharded(spec(quarantined=(0,)), jobs=1)
        assert healthy["totals"]["accesses"] == sick["totals"]["accesses"]
        assert healthy["service"]["busy_ticks"] == \
            sick["service"]["busy_ticks"]


class TestCli:
    ARGS = ["serve-sharded", "--rates", "0.02", "--requests", "96",
            "--levels", "6", "--capacity", "16", "--batch", "4",
            "--shards", "2", "--subtrees", "8", "--no-cache"]

    def test_report_bytes_identical_across_jobs(self, tmp_path, capsys):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(self.ARGS + ["--jobs", "1",
                                 "--report", str(first)]) == 0
        assert main(self.ARGS + ["--jobs", "2",
                                 "--report", str(second)]) == 0
        sweep_module.shutdown_pools()
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()
        payload = json.loads(first.read_text())
        assert len(payload) == 1
        assert payload[0]["spec"]["shards"] == 2

    def test_table_and_migration_lines_render(self, capsys):
        assert main(self.ARGS) == 0
        output = capsys.readouterr().out
        assert "per shard" in output
        assert "migration:" in output

    def test_quarantine_flag_reaches_the_report(self, capsys):
        assert main(self.ARGS + ["--quarantine-shard", "1"]) == 0
        output = capsys.readouterr().out
        assert "degraded: shards [1] quarantined" in output

    def test_ledger_records_per_shard_and_aggregate(self, tmp_path,
                                                    capsys, monkeypatch):
        monkeypatch.delenv("REPRO_NO_LEDGER", raising=False)
        ledger_path = tmp_path / "ledger.jsonl"
        assert main(self.ARGS + ["--ledger", str(ledger_path)]) == 0
        capsys.readouterr()
        records = [json.loads(line)
                   for line in ledger_path.read_text().splitlines()]
        kinds = [record["kind"] for record in records]
        assert kinds.count("serve-shard") == 2
        assert kinds.count("serve-sharded") == 1
        aggregate = [record for record in records
                     if record["kind"] == "serve-sharded"][0]
        assert aggregate["core"]["point"]["shards"] == 2
        shard_ids = sorted(record["core"]["point"]["shard"]
                           for record in records
                           if record["kind"] == "serve-shard")
        assert shard_ids == [0, 1]

    def test_rejects_invalid_geometry(self):
        with pytest.raises(ValueError):
            main(["serve-sharded", "--shards", "3", "--no-cache"])
