"""Tests for the inter-SDIMM transfer queue."""

import pytest

from repro.core.transfer_queue import TransferQueue, TransferQueueOverflow
from repro.oram.bucket import Block
from repro.utils.rng import DeterministicRng


def make_queue(capacity=8, p=0.0, seed=1):
    return TransferQueue(capacity, p, DeterministicRng(seed, "tq"))


def block(address, leaf=0):
    return Block(address, leaf, bytes(16))


class TestTransferQueue:
    def test_push_and_service_fifo(self):
        queue = make_queue()
        queue.push(block(1))
        queue.push(block(2))
        assert queue.service(via_drain=False).address == 1
        assert queue.service(via_drain=False).address == 2

    def test_service_empty_returns_none(self):
        assert make_queue().service(via_drain=False) is None

    def test_overflow_raises(self):
        queue = make_queue(capacity=2)
        queue.push(block(1))
        queue.push(block(2))
        with pytest.raises(TransferQueueOverflow):
            queue.push(block(3))
        assert queue.overflows == 1

    def test_contains_and_find(self):
        queue = make_queue()
        queue.push(block(7, leaf=3))
        assert 7 in queue
        assert 8 not in queue
        assert queue.find(7).leaf == 3
        assert queue.find(8) is None

    def test_remove_specific(self):
        queue = make_queue()
        queue.push(block(1))
        queue.push(block(2))
        queue.push(block(3))
        assert queue.remove(2).address == 2
        assert len(queue) == 2
        with pytest.raises(KeyError):
            queue.remove(2)

    def test_drain_probability_zero_never_triggers(self):
        queue = make_queue(capacity=100, p=0.0)
        assert not any(queue.push(block(index)) for index in range(50))

    def test_drain_probability_one_always_triggers(self):
        queue = make_queue(capacity=100, p=1.0)
        assert all(queue.push(block(index)) for index in range(50))

    def test_drain_rate_matches_probability(self):
        queue = make_queue(capacity=10_000, p=0.3, seed=5)
        triggers = sum(queue.push(block(index)) for index in range(5000))
        assert 0.25 < triggers / 5000 < 0.35

    def test_statistics(self):
        queue = make_queue(capacity=10, p=1.0)
        queue.push(block(1))
        queue.service(via_drain=True)
        queue.push(block(2))
        queue.service(via_drain=False)
        assert queue.arrivals == 2
        assert queue.drain_services == 1
        assert queue.vacancy_services == 1
        assert queue.peak_occupancy == 1

    def test_utilization_formula(self):
        assert make_queue(p=0.05).utilization_estimate == \
            pytest.approx(0.25 / 0.30)
        assert make_queue(p=0.0).utilization_estimate == 1.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_queue(capacity=0)
        with pytest.raises(ValueError):
            make_queue(p=1.5)
