"""Tests for the inter-SDIMM transfer queue."""

import pytest

from repro.core.transfer_queue import TransferQueue, TransferQueueOverflow
from repro.oram.bucket import Block
from repro.utils.rng import DeterministicRng


def make_queue(capacity=8, p=0.0, seed=1):
    return TransferQueue(capacity, p, DeterministicRng(seed, "tq"))


def block(address, leaf=0):
    return Block(address, leaf, bytes(16))


class TestTransferQueue:
    def test_push_and_service_fifo(self):
        queue = make_queue()
        queue.push(block(1))
        queue.push(block(2))
        assert queue.service(via_drain=False).address == 1
        assert queue.service(via_drain=False).address == 2

    def test_service_empty_returns_none(self):
        assert make_queue().service(via_drain=False) is None

    def test_overflow_raises(self):
        queue = make_queue(capacity=2)
        queue.push(block(1))
        queue.push(block(2))
        with pytest.raises(TransferQueueOverflow):
            queue.push(block(3))
        assert queue.overflows == 1

    def test_overflow_counts_the_arrival(self):
        """A blocked arrival is still an arrival (M/M/1/K blocking).

        The old code bumped ``overflows`` without counting the arrival, so
        ``overflows / arrivals`` overstated the overflow rate — and divided
        by zero when the very first arrival bounced.
        """
        queue = make_queue(capacity=1)
        queue.push(block(1))
        for attempt in range(3):
            with pytest.raises(TransferQueueOverflow):
                queue.push(block(2 + attempt))
        assert queue.arrivals == 4
        assert queue.overflows == 3
        assert queue.overflow_rate == pytest.approx(0.75)

    def test_overflow_rate_defined_before_any_arrival(self):
        assert make_queue().overflow_rate == 0.0

    def test_contains_and_find(self):
        queue = make_queue()
        queue.push(block(7, leaf=3))
        assert 7 in queue
        assert 8 not in queue
        assert queue.find(7).leaf == 3
        assert queue.find(8) is None

    def test_remove_specific(self):
        queue = make_queue()
        queue.push(block(1))
        queue.push(block(2))
        queue.push(block(3))
        assert queue.remove(2).address == 2
        assert len(queue) == 2
        with pytest.raises(KeyError):
            queue.remove(2)

    def test_drain_probability_zero_never_triggers(self):
        queue = make_queue(capacity=100, p=0.0)
        assert not any(queue.push(block(index)) for index in range(50))

    def test_drain_probability_one_always_triggers(self):
        queue = make_queue(capacity=100, p=1.0)
        assert all(queue.push(block(index)) for index in range(50))

    def test_drain_rate_matches_probability(self):
        queue = make_queue(capacity=10_000, p=0.3, seed=5)
        triggers = sum(queue.push(block(index)) for index in range(5000))
        assert 0.25 < triggers / 5000 < 0.35

    def test_statistics(self):
        queue = make_queue(capacity=10, p=1.0)
        queue.push(block(1))
        queue.service(via_drain=True)
        queue.push(block(2))
        queue.service(via_drain=False)
        assert queue.arrivals == 2
        assert queue.drain_services == 1
        assert queue.vacancy_services == 1
        assert queue.peak_occupancy == 1

    def test_utilization_formula(self):
        assert make_queue(p=0.05).utilization_estimate() == \
            pytest.approx(0.25 / 0.30)
        assert make_queue(p=0.0).utilization_estimate() == 1.0

    def test_utilization_takes_arrival_rate(self):
        """No hardcoded 0.25: the estimate must agree with the model."""
        from repro.analysis.queueing import drain_utilization

        queue = make_queue(p=0.1)
        for rate in (0.1, 0.25, 0.5):
            assert queue.utilization_estimate(rate) == \
                pytest.approx(drain_utilization(0.1, rate))
        assert queue.utilization_estimate(0.5) == pytest.approx(0.5 / 0.6)

    def test_measured_overflow_rate_matches_mm1k_model(self):
        """Acceptance: measured overflow at matched (p, K) tracks the
        corrected analytical prediction.

        Drives the queue as a slotted birth-death chain — per slot an
        arrival w.p. ``a`` and an independent service opportunity w.p.
        ``s`` — whose stationary full-state probability approaches the
        M/M/1/K value for small slot probabilities (rho = a/s).
        """
        from repro.analysis.queueing import mm1k_full_probability

        arrival_p, service_p, capacity = 0.05, 0.1, 4
        queue = make_queue(capacity=capacity, p=0.0, seed=7)
        chance = DeterministicRng(11, "chain")
        for step in range(400_000):
            if chance.bernoulli(arrival_p):
                try:
                    queue.push(block(step))
                except TransferQueueOverflow:
                    pass
            if chance.bernoulli(service_p):
                queue.service(via_drain=True)
        predicted = mm1k_full_probability(arrival_p / service_p, capacity)
        assert queue.arrivals > 0
        assert queue.overflow_rate == pytest.approx(predicted, rel=0.2)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make_queue(capacity=0)
        with pytest.raises(ValueError):
            make_queue(p=1.5)
