"""Hypothesis property tests for the adaptive control plane.

The controllers in :mod:`repro.control` carry hard invariants the rest
of the system leans on: the drain set-point always lands in the valid
lottery range [0, 1], admission moves never push the queue bound past
the configured K, a constant signal reaches a fixed point (no
oscillation), morphing is impossible for tenants the operator never
declassified, and the decision log is a pure function of its inputs
(replay stability).  Each property is checked over adversarially
generated windows, not just the happy-path steps the integration tests
drive.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.queueing import drain_utilization, mm1k_full_probability
from repro.control.admission import AdmissionController
from repro.control.decisions import decisions_payload, window_p99
from repro.control.drain import (DrainController, setpoint_probability,
                                 target_utilization)
from repro.control.morph import MODE_MORPHED, MODE_SECURE, MorphController

# one window's traffic: (new arrivals into the queue, offered accesses
# that could have produced an arrival) — arrivals never exceed offered
window_counts = st.integers(min_value=0, max_value=512).flatmap(
    lambda offered: st.tuples(st.integers(min_value=0, max_value=offered),
                              st.just(offered)))

# one window's admission signal: (p99 sojourn or None, shed, depth)
admission_signals = st.tuples(
    st.one_of(st.none(), st.integers(min_value=0, max_value=1 << 16)),
    st.integers(min_value=0, max_value=256),
    st.integers(min_value=0, max_value=256))


class TestDrainSetpoint:
    @settings(max_examples=60, deadline=None)
    @given(rho=st.floats(min_value=1e-6, max_value=1.0,
                         allow_nan=False, allow_infinity=False),
           rate=st.floats(min_value=0.0, max_value=4.0,
                          allow_nan=False, allow_infinity=False))
    def test_setpoint_stays_a_probability(self, rho, rate):
        probability = setpoint_probability(rho, rate)
        assert 0.0 <= probability <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(rho=st.floats(min_value=0.05, max_value=1.0,
                         allow_nan=False, allow_infinity=False),
           rate=st.floats(min_value=1e-3, max_value=1.0,
                          allow_nan=False, allow_infinity=False))
    def test_setpoint_inverts_drain_utilization(self, rho, rate):
        """Unclamped set-points reproduce the target rho exactly —
        p* is the algebraic inverse of rho = lambda / (lambda + p)."""
        probability = setpoint_probability(rho, rate)
        if 0.0 < probability < 1.0:
            achieved = drain_utilization(probability, arrival_rate=rate)
            assert abs(achieved - rho) < 1e-9

    @settings(max_examples=40, deadline=None)
    @given(capacity=st.integers(min_value=1, max_value=256),
           budget=st.floats(min_value=1e-12, max_value=0.5,
                            allow_nan=False, allow_infinity=False))
    def test_target_utilization_respects_budget(self, capacity, budget):
        rho = target_utilization(capacity, budget)
        assert 0.0 <= rho <= 1.0
        if rho < 1.0:
            # the bisection keeps the admissible side: overflow at the
            # returned rho never exceeds the budget
            assert mm1k_full_probability(rho, capacity) <= budget + 1e-9


class TestDrainController:
    @settings(max_examples=40, deadline=None)
    @given(windows=st.lists(window_counts, min_size=1, max_size=24),
           capacity=st.integers(min_value=1, max_value=128),
           initial=st.floats(min_value=0.0, max_value=1.0,
                             allow_nan=False, allow_infinity=False))
    def test_probability_stays_in_unit_interval(self, windows, capacity,
                                                initial):
        """p in [0, 1] under arbitrary window observations."""
        controller = DrainController(capacity, initial)
        arrivals = offered = 0
        for index, (arrived, seen) in enumerate(windows):
            arrivals += arrived
            offered += seen
            decision = controller.plan(index, (index + 1) * 1024,
                                       arrivals, offered)
            assert 0.0 <= controller.probability <= 1.0
            if decision.applied:
                assert 0.0 <= decision.after["p"] <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(arrived=st.integers(min_value=0, max_value=64),
           seen=st.integers(min_value=1, max_value=64),
           capacity=st.integers(min_value=2, max_value=128))
    def test_constant_load_converges_without_oscillation(self, arrived,
                                                         seen, capacity):
        """A step load is absorbed in one move; after it, every window
        holds inside the deadband — the controller cannot oscillate."""
        arrived = min(arrived, seen)
        controller = DrainController(capacity, 0.5)
        applied = []
        for index in range(12):
            decision = controller.plan(index, (index + 1) * 1024,
                                       arrived * (index + 1),
                                       seen * (index + 1))
            applied.append(decision.applied)
        assert sum(applied) <= 1
        assert not any(applied[1:])


class TestAdmissionController:
    @settings(max_examples=40, deadline=None)
    @given(signals=st.lists(admission_signals, min_size=1, max_size=32),
           slo=st.integers(min_value=1, max_value=4096),
           capacity=st.integers(min_value=1, max_value=128),
           batch=st.integers(min_value=1, max_value=64))
    def test_knobs_stay_clamped(self, signals, slo, capacity, batch):
        """1 <= batch <= cap and 1 <= limit <= K under any signal."""
        controller = AdmissionController(slo, capacity, batch_size=batch)
        for index, (p99, shed, depth) in enumerate(signals):
            controller.plan(index, (index + 1) * 256, p99, shed, depth)
            assert 1 <= controller.batch_size <= controller.batch_cap
            assert 1 <= controller.admit_limit <= capacity

    @settings(max_examples=40, deadline=None)
    @given(signal=admission_signals,
           slo=st.integers(min_value=1, max_value=4096),
           capacity=st.integers(min_value=1, max_value=64),
           batch=st.integers(min_value=1, max_value=32))
    def test_constant_signal_reaches_fixed_point(self, signal, slo,
                                                 capacity, batch):
        """Monotone clamped moves terminate: a constant signal stops
        producing applied decisions, and the knobs stop changing."""
        p99, shed, depth = signal
        controller = AdmissionController(slo, capacity, batch_size=batch)
        states = []
        applied = []
        for index in range(64):
            decision = controller.plan(index, (index + 1) * 256,
                                       p99, shed, depth)
            applied.append(decision.applied)
            states.append((controller.batch_size, controller.admit_limit))
        assert not any(applied[-8:]), "still moving after 56 windows"
        assert len(set(states[-8:])) == 1

    @settings(max_examples=30, deadline=None)
    @given(signals=st.lists(admission_signals, min_size=1, max_size=24),
           slo=st.integers(min_value=1, max_value=2048),
           capacity=st.integers(min_value=1, max_value=64))
    def test_decision_log_replays_identically(self, signals, slo, capacity):
        """Two controllers fed the same windows emit byte-equal logs."""
        logs = []
        for _ in range(2):
            controller = AdmissionController(slo, capacity)
            decisions = [controller.plan(index, (index + 1) * 128,
                                         p99, shed, depth)
                         for index, (p99, shed, depth)
                         in enumerate(signals)]
            logs.append(decisions_payload(decisions))
        assert logs[0] == logs[1]


class TestMorphController:
    @settings(max_examples=40, deadline=None)
    @given(loads=st.lists(st.integers(min_value=0, max_value=512),
                          min_size=1, max_size=32))
    def test_undeclassified_tenant_never_morphs(self, loads):
        """The declassification gate is absolute: no load sequence can
        move a tenant outside the declassified set out of secure mode."""
        controller = MorphController(frozenset({"other"}))
        for index, load in enumerate(loads):
            decision = controller.plan(index, (index + 1) * 512,
                                       "tenant", load)
            assert controller.mode("tenant") == MODE_SECURE
            if decision is not None:
                assert not decision.applied
                assert decision.reason == "not-declassified"

    @settings(max_examples=40, deadline=None)
    @given(load=st.integers(min_value=0, max_value=64),
           sustain=st.integers(min_value=1, max_value=4))
    def test_constant_load_settles_in_one_flip(self, load, sustain):
        """Hysteresis convergence: a step load flips the mode at most
        once, and only after ``sustain`` qualifying windows."""
        controller = MorphController(frozenset({"t"}), high_watermark=8,
                                     low_watermark=2, sustain=sustain)
        flips = []
        for index in range(sustain * 3 + 4):
            decision = controller.plan(index, (index + 1) * 512, "t", load)
            if decision is not None and decision.applied:
                flips.append((index, decision.after["mode"]))
        if load >= 8:
            assert flips == [(sustain - 1, MODE_MORPHED)]
        else:
            assert flips == []


class TestWindowP99:
    @settings(max_examples=40, deadline=None)
    @given(sojourns=st.lists(st.integers(min_value=0, max_value=1 << 20),
                             min_size=1, max_size=256))
    def test_p99_is_an_order_statistic(self, sojourns):
        value = window_p99(sojourns)
        ordered = sorted(sojourns)
        assert value in sojourns
        # nearest-rank p99 sits in the top 1% plus one slot
        assert sum(1 for s in ordered if s > value) <= len(ordered) // 100

    @settings(max_examples=20, deadline=None)
    @given(sojourns=st.lists(st.integers(min_value=0, max_value=1 << 20),
                             min_size=1, max_size=64))
    def test_p99_is_permutation_invariant(self, sojourns):
        assert window_p99(sojourns) == window_p99(list(reversed(sojourns)))
