"""Tests for bank/rank state machines and the channel scheduler."""

import pytest

from repro.config import DramOrganization, DramTiming
from repro.dram.address import DecodedAddress
from repro.dram.bank import Bank, ScaledTiming
from repro.dram.channel import Channel
from repro.dram.commands import PowerState, RowBufferOutcome
from repro.dram.rank import Rank

TIMING = DramTiming()
SCALE = 1  # test in raw memory cycles for readable arithmetic


def make_channel(**kwargs):
    return Channel(TIMING, DramOrganization(), scale=SCALE, **kwargs)


def addr(rank=0, bank=0, row=0, column=0):
    return DecodedAddress(rank=rank, bank=bank, row=row, column=column)


class TestBank:
    def test_classify_transitions(self):
        bank = Bank(ScaledTiming(TIMING, 1))
        assert bank.classify(5) is RowBufferOutcome.MISS
        bank.activate(0, 5)
        assert bank.classify(5) is RowBufferOutcome.HIT
        assert bank.classify(6) is RowBufferOutcome.CONFLICT

    def test_activate_sets_cas_ready(self):
        bank = Bank(ScaledTiming(TIMING, 1))
        bank.activate(100, 3)
        assert bank.ready_cas == 100 + TIMING.trcd
        assert bank.ready_precharge == 100 + TIMING.tras

    def test_precharge_closes_row(self):
        bank = Bank(ScaledTiming(TIMING, 1))
        bank.activate(0, 3)
        bank.precharge(50)
        assert bank.open_row is None
        assert bank.ready_activate >= 50 + TIMING.trp

    def test_scale_multiplies_parameters(self):
        scaled = ScaledTiming(TIMING, 2)
        assert scaled.trcd == 2 * TIMING.trcd
        assert scaled.tburst == 2 * TIMING.tburst

    def test_scale_rejects_zero(self):
        with pytest.raises(ValueError):
            ScaledTiming(TIMING, 0)


class TestRank:
    def test_tfaw_limits_activates(self):
        rank = Rank(ScaledTiming(TIMING, 1), banks_per_rank=8)
        times = []
        candidate = 0
        for _ in range(5):
            issue = rank.earliest_activate(candidate)
            rank.record_activate(issue)
            times.append(issue)
            candidate = issue + 1
        # the fifth ACT must wait until tFAW after the first
        assert times[4] >= times[0] + TIMING.tfaw

    def test_trrd_spacing(self):
        rank = Rank(ScaledTiming(TIMING, 1), banks_per_rank=8)
        first = rank.earliest_activate(0)
        rank.record_activate(first)
        second = rank.earliest_activate(first)
        assert second >= first + TIMING.trrd

    def test_power_down_and_wake(self):
        rank = Rank(ScaledTiming(TIMING, 1), banks_per_rank=8)
        rank.enter_power_down(100)
        assert rank.power_state is PowerState.POWER_DOWN
        ready = rank.wake(200)
        assert ready == 200 + TIMING.txp
        assert rank.power_state is PowerState.PRECHARGE_STANDBY
        assert rank.power_down_exits == 1

    def test_wake_when_awake_is_free(self):
        rank = Rank(ScaledTiming(TIMING, 1), banks_per_rank=8)
        assert rank.wake(50) == 50

    def test_residency_accounting(self):
        rank = Rank(ScaledTiming(TIMING, 1), banks_per_rank=8)
        rank.enter_power_down(100)
        rank.wake(600)
        rank.finalize(1000)
        assert rank.state_residency[PowerState.POWER_DOWN] >= 500
        total = sum(rank.state_residency.values())
        assert total >= 1000

    def test_refresh_blocks_banks(self):
        timing = ScaledTiming(TIMING, 1)
        rank = Rank(timing, banks_per_rank=8, refresh_enabled=True)
        ready = rank.maybe_refresh(timing.trefi + 1)
        assert ready >= timing.trefi + 1 + timing.trfc
        assert rank.refresh_count == 1

    def test_refresh_disabled_is_noop(self):
        rank = Rank(ScaledTiming(TIMING, 1), banks_per_rank=8)
        assert rank.maybe_refresh(10**9) == 10**9
        assert rank.refresh_count == 0


class TestChannel:
    def test_first_access_is_row_miss(self):
        channel = make_channel()
        timing = channel.schedule_access(addr(), False, 0)
        assert timing.outcome is RowBufferOutcome.MISS
        # ACT at 0, CAS at tRCD, data tCL later
        assert timing.data_start == TIMING.trcd + TIMING.tcl

    def test_row_hit_is_cas_only(self):
        channel = make_channel()
        first = channel.schedule_access(addr(column=0), False, 0)
        second = channel.schedule_access(addr(column=1), False,
                                         first.cas_issue)
        assert second.outcome is RowBufferOutcome.HIT
        # back-to-back hits stream on the data bus
        assert second.data_start - first.data_start >= TIMING.tburst

    def test_row_conflict_pays_precharge(self):
        channel = make_channel()
        first = channel.schedule_access(addr(row=0), False, 0)
        conflict = channel.schedule_access(addr(row=1), False, first.data_end)
        assert conflict.outcome is RowBufferOutcome.CONFLICT
        assert conflict.data_start >= first.data_end + TIMING.trp

    def test_bank_parallelism_overlaps_prep(self):
        channel = make_channel()
        first = channel.schedule_access(addr(bank=0), False, 0)
        second = channel.schedule_access(addr(bank=1), False, 0)
        # second bank's ACT overlaps the first's data; bursts serialize
        assert second.data_start >= first.data_end
        assert second.data_start < first.data_end + TIMING.tcl

    def test_rank_switch_pays_trtrs(self):
        channel = make_channel()
        first = channel.schedule_access(addr(rank=0), False, 0)
        second = channel.schedule_access(addr(rank=1), False, 0)
        assert second.data_start >= first.data_end + TIMING.trtrs

    def test_write_to_read_turnaround_same_rank(self):
        channel = make_channel()
        write = channel.schedule_access(addr(column=0), True, 0)
        read = channel.schedule_access(addr(column=1), False, write.cas_issue)
        assert read.cas_issue >= write.data_end + TIMING.twtr

    def test_counters_track_events(self):
        channel = make_channel()
        channel.schedule_access(addr(column=0), False, 0)
        channel.schedule_access(addr(column=1), False, 0)
        channel.schedule_access(addr(column=2), True, 0)
        counts = channel.counters.as_dict()
        assert counts["reads"] == 2
        assert counts["writes"] == 1
        assert counts["activates"] == 1
        assert channel.counters.row_hit_rate == pytest.approx(2 / 3)

    def test_powered_down_rank_wakes_on_access(self):
        channel = make_channel()
        channel.ranks[0].enter_power_down(0)
        timing = channel.schedule_access(addr(), False, 1000)
        assert timing.data_start >= 1000 + TIMING.txp + TIMING.trcd + TIMING.tcl

    def test_schedule_lines_burst(self):
        channel = make_channel()
        addresses = [addr(column=index) for index in range(10)]
        last = channel.schedule_lines(addresses, False, 0)
        # one ACT, then ten streaming bursts
        assert channel.counters.activates == 1
        assert last.data_end >= TIMING.trcd + TIMING.tcl + 10 * TIMING.tburst

    def test_schedule_lines_rejects_empty(self):
        channel = make_channel()
        with pytest.raises(ValueError):
            channel.schedule_lines([], False, 0)

    def test_finalize_closes_residency(self):
        channel = make_channel()
        channel.schedule_access(addr(), False, 0)
        channel.finalize(10_000)
        residency = channel.ranks[0].state_residency
        assert sum(residency.values()) >= 10_000
