"""The performance ledger: records, digests, the file, the migration."""

import json
import os

import pytest

from repro.config import DesignPoint, small_config
from repro.obs.ledger import (LEDGER_DISABLE_ENV, LEDGER_ENV, LEDGER_SCHEMA,
                              Ledger, canonical_core_line, config_digest_hex,
                              host_provenance, make_record,
                              migrate_bench_pr3, point_key, resolve_ledger,
                              simulation_core, sweep_scaling_core,
                              verify_record)
from repro.sim.system import run_simulation

PR3_PATH = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks", "results", "BENCH_pr3.json")


def _small_run():
    config = small_config(DesignPoint.INDEP_2)
    return config, run_simulation(config, "mcf", trace_length=200)


class TestRecords:
    def test_record_shape_and_digest(self):
        record = make_record("test", {"point": {"a": 1}, "measure": {}},
                             wall_ms=12.3456, jobs=2, from_cache=False)
        assert record["schema"] == LEDGER_SCHEMA
        assert verify_record(record)
        assert record["host"]["wall_ms"] == 12.346
        assert record["host"]["jobs"] == 2
        assert record["host"]["from_cache"] is False
        # provenance names the measuring machine
        for key in ("cpu_count", "python", "platform"):
            assert key in record["host"]

    def test_tampered_core_fails_verification(self):
        record = make_record("test", {"point": {"a": 1},
                                      "measure": {"cycles": 10}})
        record["core"]["measure"]["cycles"] = 11
        assert not verify_record(record)

    def test_host_section_is_outside_the_digest(self):
        first = make_record("test", {"point": {"a": 1}}, wall_ms=1.0)
        second = make_record("test", {"point": {"a": 1}}, wall_ms=99.0)
        assert first["core_digest"] == second["core_digest"]
        assert canonical_core_line(first) == canonical_core_line(second)
        assert "wall_ms" not in canonical_core_line(first)

    def test_point_key_distinguishes_kind_and_point(self):
        base = make_record("gate", {"point": {"design": "indep-2"}})
        other_kind = make_record("sweep", {"point": {"design": "indep-2"}})
        other_point = make_record("gate", {"point": {"design": "split-2"}})
        keyless = make_record("sweep-scaling", {"measure": {}})
        assert point_key(base) not in (point_key(other_kind),
                                       point_key(other_point))
        assert point_key(keyless) is None

    def test_simulation_core_measures_the_run(self):
        config, result = _small_run()
        core = simulation_core("indep-2", "mcf", result,
                               config_digest_hex(config), trace_length=200)
        measure = core["measure"]
        assert measure["execution_cycles"] == result.execution_cycles
        assert measure["miss_count"] == result.miss_count
        assert measure["slo"]["count"] == result.miss_latency.count
        assert core["point"]["design"] == "indep-2"
        assert len(core["config_digest"]) == 64
        # the hit rate sits inside the digest-protected measure, so a
        # silent loss of fast-path coverage becomes a gate finding
        assert measure["fastpath_hit_rate"] == \
            result.extras.get("fastpath_hit_rate", 0.0)
        assert 0.0 <= measure["fastpath_hit_rate"] <= 1.0
        # the core is replay-stable: same run, same bytes
        again = simulation_core("indep-2", "mcf", result,
                                config_digest_hex(config),
                                trace_length=200,
                                fingerprint=core["fingerprint"])
        assert json.dumps(core, sort_keys=True) == \
            json.dumps(again, sort_keys=True)


class TestLedgerFile:
    def test_append_read_roundtrip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = Ledger(path)
        records = [make_record("test", {"point": {"i": i}})
                   for i in range(3)]
        ledger.append_all(records)
        back = ledger.read()
        assert [r["core"]["point"]["i"] for r in back] == [0, 1, 2]
        assert ledger.skipped_lines == 0

    def test_corrupt_and_tampered_lines_are_skipped(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = Ledger(path)
        ledger.append(make_record("test", {"point": {"i": 0}}))
        tampered = make_record("test", {"point": {"i": 1}})
        tampered["core"]["point"]["i"] = 99
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
            handle.write(json.dumps(tampered) + "\n")
        back = ledger.read()
        assert len(back) == 1
        assert ledger.skipped_lines == 2

    def test_missing_file_reads_empty(self, tmp_path):
        ledger = Ledger(str(tmp_path / "absent.jsonl"))
        assert ledger.read() == []

    def test_canonical_dump_is_host_free(self, tmp_path):
        ledger = Ledger(str(tmp_path / "ledger.jsonl"))
        ledger.append(make_record("test", {"point": {"i": 0}},
                                  wall_ms=123.0))
        dump = ledger.canonical_dump()
        assert "wall_ms" not in dump
        assert dump.endswith("\n")
        # dumps from records with different host sections are identical
        other = Ledger(str(tmp_path / "other.jsonl"))
        other.append(make_record("test", {"point": {"i": 0}},
                                 wall_ms=9999.0, jobs=8))
        assert other.canonical_dump() == dump


class TestResolveLedger:
    def test_explicit_path_wins(self, tmp_path, monkeypatch):
        monkeypatch.delenv(LEDGER_DISABLE_ENV, raising=False)
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "env.jsonl"))
        ledger = resolve_ledger(str(tmp_path / "explicit.jsonl"))
        assert ledger is not None
        assert ledger.path.endswith("explicit.jsonl")

    def test_env_fallback_and_disable(self, tmp_path, monkeypatch):
        monkeypatch.setenv(LEDGER_ENV, str(tmp_path / "env.jsonl"))
        monkeypatch.delenv(LEDGER_DISABLE_ENV, raising=False)
        assert resolve_ledger().path.endswith("env.jsonl")
        monkeypatch.setenv(LEDGER_DISABLE_ENV, "1")
        assert resolve_ledger() is None

    def test_explicit_path_overrides_disable_env(self, tmp_path,
                                                 monkeypatch, capsys):
        """An explicit ``--ledger FILE`` beats ambient REPRO_NO_LEDGER.

        The env var is a blanket default for *implicit* ledger
        resolution; a user naming a file on the command line asked for
        that file.  The override is announced on stderr so the ambient
        setting is not silently ignored.
        """
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        monkeypatch.setenv(LEDGER_DISABLE_ENV, "1")
        ledger = resolve_ledger(str(tmp_path / "x.jsonl"))
        assert ledger is not None
        assert ledger.path.endswith("x.jsonl")
        captured = capsys.readouterr()
        assert LEDGER_DISABLE_ENV in captured.err
        assert "overrides" in captured.err

    def test_no_warning_without_disable_env(self, tmp_path, monkeypatch,
                                            capsys):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        monkeypatch.delenv(LEDGER_DISABLE_ENV, raising=False)
        assert resolve_ledger(str(tmp_path / "y.jsonl")) is not None
        assert capsys.readouterr().err == ""

    def test_nothing_configured_is_none(self, monkeypatch):
        monkeypatch.delenv(LEDGER_ENV, raising=False)
        monkeypatch.delenv(LEDGER_DISABLE_ENV, raising=False)
        assert resolve_ledger() is None


class TestScalingCore:
    def test_single_core_caveat_is_explicit(self):
        core = sweep_scaling_core(points=8, serial_wall_s=2.0,
                                  parallel_wall_s=2.2, jobs=4,
                                  results_identical=True, cpu_count=1,
                                  fingerprint="f" * 64)
        assert core["measure"]["single_core_caveat"] is True
        assert core["measure"]["cpu_count"] == 1
        assert core["measure"]["speedup"] == pytest.approx(2.0 / 2.2)

    def test_multi_core_has_no_caveat(self):
        core = sweep_scaling_core(points=8, serial_wall_s=2.0,
                                  parallel_wall_s=1.0, jobs=4,
                                  results_identical=True, cpu_count=8,
                                  fingerprint="f" * 64)
        assert core["measure"]["single_core_caveat"] is False


class TestMigration:
    def test_migrates_the_committed_pr3_record(self):
        with open(PR3_PATH, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        records = migrate_bench_pr3(payload)
        assert [r["kind"] for r in records] == ["gate", "sweep-scaling"]
        gate, scaling = records
        assert all(verify_record(r) for r in records)
        assert gate["core"]["point"]["design"] == "freecursive"
        assert gate["core"]["measure"]["execution_cycles"] == 1078838
        assert gate["core"]["fingerprint"] == payload["code_fingerprint"]
        assert gate["host"]["migrated_from"] == "BENCH_pr3.json"
        assert scaling["core"]["measure"]["single_core_caveat"] is True
        assert scaling["core"]["measure"]["results_identical"] is True

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError):
            migrate_bench_pr3({"schema": 3})

    def test_original_file_still_schema_one(self):
        # the satellite contract: migration never rewrites the original
        with open(PR3_PATH, "r", encoding="utf-8") as handle:
            assert json.load(handle)["schema"] == 1
