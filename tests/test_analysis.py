"""Tests for the Section IV analytical models (Figure 13 + traffic)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.queueing import (
    drain_utilization,
    mm1k_full_probability,
    transfer_queue_overflow_probability,
)
from repro.analysis.random_walk import (
    displacement_curve,
    displacement_exceedance_probability,
    expected_displacement,
    first_passage_curve,
    first_passage_overflow_probability,
)
from repro.analysis.traffic import (
    baseline_lines_per_access,
    independent_traffic,
    split_traffic,
)
from repro.config import OramConfig, SdimmConfig


class TestRandomWalk:
    def test_small_buffer_saturated_fast(self):
        """Figure 13a: the 16-entry buffer curve is ~97% by 100K steps."""
        probability = displacement_exceedance_probability(16, 100_000)
        assert probability > 0.9

    def test_paper_800k_points(self):
        """Figure 13a at 800K steps: ~91% (64), ~70% (256), ~10% (1024)."""
        assert displacement_exceedance_probability(64, 800_000) == \
            pytest.approx(0.91, abs=0.04)
        assert displacement_exceedance_probability(256, 800_000) == \
            pytest.approx(0.70, abs=0.05)
        assert displacement_exceedance_probability(1024, 800_000) == \
            pytest.approx(0.10, abs=0.04)

    def test_exact_and_normal_regimes_agree(self):
        """The exact DP and the normal approximation must agree near the
        regime boundary."""
        exact = displacement_exceedance_probability(20, 4_000)
        sigma = (0.5 * 4_000) ** 0.5
        import math
        approx = math.erfc((20.5 / sigma) / math.sqrt(2))
        assert exact == pytest.approx(approx, abs=0.02)

    def test_displacement_curve_monotone(self):
        curve = displacement_curve(32, 50_000, points=5)
        probabilities = [probability for _, probability in curve]
        assert probabilities == sorted(probabilities)
        assert len(curve) == 5

    def test_monotone_in_threshold(self):
        small = displacement_exceedance_probability(16, 20_000)
        large = displacement_exceedance_probability(64, 20_000)
        assert small > large

    def test_first_passage_dominates_displacement(self):
        """Ever-exceeded is at least as likely as currently-exceeded."""
        threshold, steps = 16, 3_000
        assert first_passage_overflow_probability(threshold, steps) >= \
            displacement_exceedance_probability(threshold, steps)

    def test_first_passage_curve_monotone(self):
        curve = first_passage_curve(32, 50_000, sample_every=10_000)
        probabilities = [probability for _, probability in curve]
        assert probabilities == sorted(probabilities)

    def test_first_passage_saturates(self):
        """An undrained queue overflows with probability heading to 1."""
        assert first_passage_overflow_probability(8, 50_000) > 0.99

    def test_drain_bias_reduces_first_passage(self):
        lazy = first_passage_overflow_probability(16, 20_000)
        drained = first_passage_overflow_probability(16, 20_000,
                                                     p_gain=0.2,
                                                     p_loss=0.3)
        assert drained < lazy

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            displacement_exceedance_probability(0, 100)
        with pytest.raises(ValueError):
            displacement_exceedance_probability(8, 0)
        with pytest.raises(ValueError):
            first_passage_overflow_probability(8, 100, p_gain=0.9,
                                               p_loss=0.9)

    def test_expected_displacement(self):
        assert expected_displacement(800_000) == pytest.approx(632.45,
                                                               rel=0.01)
        assert expected_displacement(0) == 0.0


class TestQueueing:
    def test_paper_utilization_formula(self):
        assert drain_utilization(0.05) == pytest.approx(0.25 / 0.30)
        assert drain_utilization(0.0) == 1.0

    def test_saturated_queue_uniform(self):
        assert mm1k_full_probability(1.0, 9) == pytest.approx(0.1)

    def test_small_p_small_queue_rarely_overflows(self):
        """Figure 13b: 'even a small queue has a very small overflow rate
        if we occasionally service an incoming block'."""
        assert transfer_queue_overflow_probability(0.1, 64) < 1e-9
        assert transfer_queue_overflow_probability(0.05, 128) < 1e-9

    def test_no_drain_saturates(self):
        assert transfer_queue_overflow_probability(0.0, 64) == \
            pytest.approx(1 / 65)

    def test_monotone_in_drain_probability(self):
        values = [transfer_queue_overflow_probability(p, 16)
                  for p in (0.0, 0.02, 0.05, 0.1, 0.3)]
        assert values == sorted(values, reverse=True)

    def test_monotone_in_capacity(self):
        values = [transfer_queue_overflow_probability(0.05, capacity)
                  for capacity in (4, 16, 64)]
        assert values == sorted(values, reverse=True)

    @given(st.floats(min_value=0.0, max_value=0.99),
           st.integers(min_value=1, max_value=200))
    def test_probability_bounds(self, rho, capacity):
        probability = mm1k_full_probability(rho, capacity)
        assert 0.0 <= probability <= 1.0

    @staticmethod
    def _exact_full_probability(rho, capacity):
        """rho^K / sum(rho^i) in exact rational arithmetic."""
        from fractions import Fraction

        exact_rho = Fraction(rho)
        total = sum(exact_rho ** index for index in range(capacity + 1))
        return float(exact_rho ** capacity / total)

    @given(st.floats(min_value=0.9999, max_value=1.0001),
           st.integers(min_value=1, max_value=256))
    @settings(max_examples=200)
    def test_stable_through_rho_one(self, rho, capacity):
        """No catastrophic cancellation as rho -> 1.

        The old closed form ``rho^K (1-rho) / (1-rho^(K+1))`` loses most
        of its significant digits in this band (both numerator and
        denominator -> 0) and relied on a 1e-12 exact-equality escape
        hatch; the geometric-sum rewrite must match the exact stationary
        distribution, computed with Fractions, to float precision.
        """
        probability = mm1k_full_probability(rho, capacity)
        exact = self._exact_full_probability(rho, capacity)
        assert probability == pytest.approx(exact, rel=1e-12, abs=1e-15)

    def test_exactly_one_needs_no_escape_hatch(self):
        for capacity in (1, 7, 100):
            assert mm1k_full_probability(1.0, capacity) == \
                pytest.approx(1.0 / (capacity + 1), rel=1e-15)

    def test_supercritical_rho_is_finite_and_monotone(self):
        """rho > 1 must not overflow for large K and must exceed 1-1/rho."""
        values = [mm1k_full_probability(rho, 512)
                  for rho in (1.0001, 1.5, 4.0, 100.0)]
        assert all(0.0 < value <= 1.0 for value in values)
        assert values == sorted(values)
        assert mm1k_full_probability(2.0, 512) == pytest.approx(0.5)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            drain_utilization(-0.1)
        with pytest.raises(ValueError):
            mm1k_full_probability(0.5, 0)


class TestTraffic:
    ORAM = OramConfig(levels=28, cached_levels=7)

    def test_baseline_formula(self):
        """2 (Z+1) L: the paper's count for Freecursive."""
        assert baseline_lines_per_access(self.ORAM, 7) == 2 * 5 * 21

    def test_independent_is_one_read_n_plus_one_writes(self):
        traffic = independent_traffic(self.ORAM, SdimmConfig(), 4, 7)
        assert traffic.data_lines == 6  # 1 + 1 + 4, the paper's "1r 5w"

    def test_independent_fraction_near_paper(self):
        """Paper: 4.2% (INDEP-2) and 7.8% (INDEP-4) with probes."""
        two = independent_traffic(self.ORAM, SdimmConfig(), 2, 7)
        four = independent_traffic(self.ORAM, SdimmConfig(), 4, 7)
        assert 0.02 < two.fraction_of_baseline < 0.08
        assert 0.03 < four.fraction_of_baseline < 0.1
        assert four.data_lines > two.data_lines

    def test_no_cache_reduces_fraction(self):
        """Longer paths shrink the *relative* off-DIMM share (paper: under
        3.2% without ORAM caching)."""
        cached = independent_traffic(self.ORAM, SdimmConfig(), 2, 7)
        uncached = independent_traffic(self.ORAM, SdimmConfig(), 2, 0)
        assert uncached.fraction_of_baseline < cached.fraction_of_baseline

    def test_split_fraction_near_paper(self):
        """Paper: Split moves ~12% of baseline off-DIMM."""
        traffic = split_traffic(self.ORAM, 2, 7)
        assert 0.08 < traffic.fraction_of_baseline < 0.18

    def test_split_carries_more_than_independent(self):
        split = split_traffic(self.ORAM, 2, 7)
        independent = independent_traffic(self.ORAM, SdimmConfig(), 2, 7)
        assert split.data_lines > independent.data_lines
