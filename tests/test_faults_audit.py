"""Tests for the faulted bus-trace audits (repro.obs.audit extensions).

The resilience claim of :mod:`repro.faults`: injecting faults — and the
retries / retransmissions they provoke — must not make a secure design's
adversary-visible trace address-distinguishable.  Faults are scheduled
positionally, so the same plan perturbs two different address streams at
exactly the same observable points.
"""

import pytest

from repro.config import DesignPoint
from repro.obs.audit import (audit_address_streams, audit_faulted_protocol,
                             audit_timing_design_with_stalls,
                             run_full_audit)


@pytest.fixture(scope="module")
def streams():
    return audit_address_streams(24, span=1 << 10)


class TestFaultedProtocolAudit:
    @pytest.mark.parametrize("design,levels", [("independent", 6),
                                               ("split", 6),
                                               ("indep-split", 7)])
    def test_secure_designs_stay_indistinguishable(self, streams, design,
                                                   levels):
        result = audit_faulted_protocol(design, *streams, levels=levels)
        assert result.passed, result.describe()
        assert result.name == f"faulted:{design}"
        assert result.length_a == result.length_b > 0

    def test_fault_free_and_faulted_audits_both_pass(self, streams):
        clean = audit_faulted_protocol("independent", *streams,
                                       bit_flips=0, replays=0,
                                       link_drops=0, link_duplicates=0,
                                       link_delays=0)
        assert clean.passed, clean.describe()

    def test_link_faults_alone_preserve_shapes(self, streams):
        result = audit_faulted_protocol("independent", *streams,
                                        bit_flips=0, replays=0,
                                        link_drops=2, link_duplicates=2,
                                        link_delays=2)
        assert result.passed, result.describe()


class TestStalledTimingAudit:
    @pytest.mark.parametrize("design", [DesignPoint.INDEP_2,
                                        DesignPoint.SPLIT_2])
    def test_identical_stall_schedules_cancel_out(self, design):
        result = audit_timing_design_with_stalls(design, misses=6)
        assert result.passed, result.describe()
        assert result.name.startswith("timing+stalls:")


class TestFullAuditIntegration:
    def test_with_faults_appends_the_faulted_results(self):
        results = run_full_audit(misses=6, accesses=24, with_faults=True,
                                 include_negative_control=False)
        names = [result.name for result in results]
        for expected in ("faulted:independent", "faulted:split",
                         "faulted:indep-split", "timing+stalls:indep-2",
                         "timing+stalls:split-2"):
            assert expected in names
        assert all(result.passed for result in results)

    def test_without_faults_is_unchanged(self):
        results = run_full_audit(misses=6, accesses=24,
                                 include_negative_control=False)
        assert not any(result.name.startswith(("faulted:",
                                               "timing+stalls:"))
                       for result in results)
