"""Tests for the Table I DDR command encoding."""

import pytest

from repro.core.commands import (
    TABLE_I,
    CommandDecodeError,
    CommandEncoder,
    DdrFrame,
    SdimmCommand,
)


class TestTableI:
    """Assert the encoding matches Table I of the paper row by row."""

    EXPECTED = {
        SdimmCommand.SEND_PKEY: (False, False, 0x0, 0x0),
        SdimmCommand.RECEIVE_SECRET: (True, True, 0x0, 0x0),
        SdimmCommand.ACCESS: (True, True, 0x0, 0x0),
        SdimmCommand.PROBE: (False, False, 0x0, 0x8),
        SdimmCommand.FETCH_RESULT: (False, False, 0x0, 0x10),
        SdimmCommand.APPEND: (True, True, 0x0, 0x0),
        SdimmCommand.FETCH_DATA: (False, False, 0x0, 0x18),
        SdimmCommand.FETCH_STASH: (True, True, 0x0, 0x18),
        SdimmCommand.RECEIVE_LIST: (True, True, 0x0, 0x0),
    }

    def test_every_table_row(self):
        for spec in TABLE_I:
            is_long, is_write, ras, cas = self.EXPECTED[spec.command]
            assert spec.is_long == is_long, spec.command
            assert spec.is_write == is_write, spec.command
            assert spec.ras == ras, spec.command
            assert spec.cas == cas, spec.command

    def test_all_nine_commands_present(self):
        assert len(TABLE_I) == 9
        assert {spec.command for spec in TABLE_I} == set(SdimmCommand)

    def test_short_commands_use_read_mode(self):
        for spec in TABLE_I:
            if not spec.is_long:
                assert not spec.is_write

    def test_fetch_stash_takes_extra_cas(self):
        specs = {spec.command: spec for spec in TABLE_I}
        assert specs[SdimmCommand.FETCH_STASH].extra_cas
        assert sum(spec.extra_cas for spec in TABLE_I) == 1

    def test_short_cas_offsets_are_word_aligned(self):
        """CAS selects 8-byte words, so short commands sit at multiples of 8
        within the one reserved block."""
        for spec in TABLE_I:
            if not spec.is_long:
                assert spec.cas % 8 == 0
                assert spec.cas < 64


class TestEncoder:
    def setup_method(self):
        self.encoder = CommandEncoder()

    def test_short_roundtrip(self):
        frame = self.encoder.encode(SdimmCommand.PROBE)
        assert not frame.uses_data_bus
        command, payload, index = self.encoder.decode(frame)
        assert command is SdimmCommand.PROBE
        assert payload == b""
        assert index is None

    def test_long_roundtrip(self):
        frame = self.encoder.encode(SdimmCommand.ACCESS, b"ciphertext")
        assert frame.uses_data_bus
        command, payload, index = self.encoder.decode(frame)
        assert command is SdimmCommand.ACCESS
        assert payload == b"ciphertext"

    def test_ambiguous_long_commands_disambiguated(self):
        """ACCESS/APPEND/RECEIVE_LIST/RECEIVE_SECRET share RAS0/CAS0 writes;
        the payload type byte tells them apart."""
        for command in (SdimmCommand.ACCESS, SdimmCommand.APPEND,
                        SdimmCommand.RECEIVE_LIST,
                        SdimmCommand.RECEIVE_SECRET):
            frame = self.encoder.encode(command, b"x")
            decoded, _, _ = self.encoder.decode(frame)
            assert decoded is command

    def test_fetch_stash_carries_index(self):
        frame = self.encoder.encode(SdimmCommand.FETCH_STASH, b"req",
                                    stash_index=17)
        assert frame.cas_sequence == (0x18, 17)
        command, payload, index = self.encoder.decode(frame)
        assert command is SdimmCommand.FETCH_STASH
        assert index == 17

    def test_short_command_rejects_payload(self):
        with pytest.raises(ValueError):
            self.encoder.encode(SdimmCommand.PROBE, b"data")

    def test_long_command_requires_payload(self):
        with pytest.raises(ValueError):
            self.encoder.encode(SdimmCommand.ACCESS)

    def test_stash_index_only_for_fetch_stash(self):
        with pytest.raises(ValueError):
            self.encoder.encode(SdimmCommand.ACCESS, b"x", stash_index=1)
        with pytest.raises(ValueError):
            self.encoder.encode(SdimmCommand.FETCH_STASH, b"x")

    def test_decode_rejects_unreserved_ras(self):
        frame = DdrFrame(is_write=False, ras=0x100, cas_sequence=(0x0,))
        with pytest.raises(CommandDecodeError):
            self.encoder.decode(frame)

    def test_decode_rejects_unknown_short_cas(self):
        frame = DdrFrame(is_write=False, ras=0x0, cas_sequence=(0x28,))
        with pytest.raises(CommandDecodeError):
            self.encoder.decode(frame)

    def test_decode_rejects_unknown_type_byte(self):
        frame = DdrFrame(is_write=True, ras=0x0, cas_sequence=(0x0,),
                         payload=b"\xee payload")
        with pytest.raises(CommandDecodeError):
            self.encoder.decode(frame)

    def test_decode_rejects_empty_write(self):
        frame = DdrFrame(is_write=True, ras=0x0, cas_sequence=(0x0,))
        with pytest.raises(CommandDecodeError):
            self.encoder.decode(frame)
