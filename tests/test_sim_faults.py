"""Tests for the simulator's on_fault policy: record, don't crash."""

import pytest

from repro.config import DesignPoint, small_config
from repro.oram.integrity import IntegrityError
from repro.sim.cpu import SimulationDriver
from repro.sim.events import EventQueue
from repro.sim.system import build_backend, run_simulation
from repro.workloads.spec import get_profile
from repro.workloads.synthetic import iterate_trace


def run(on_fault="raise", fail_at=None, trace_length=400):
    """One small INDEP run; optionally inject an IntegrityError at the
    ``fail_at``-th backend submission."""
    config = small_config(DesignPoint.INDEP_2, seed=11)
    events = EventQueue()
    backend = build_backend(config, events)
    if fail_at is not None:
        original = backend.submit
        state = {"count": 0}

        def flaky_submit(*args, **kwargs):
            state["count"] += 1
            if state["count"] == fail_at:
                raise IntegrityError("injected mid-run detection",
                                     index=5, expected_counter=9,
                                     kind="mac")
            return original(*args, **kwargs)

        backend.submit = flaky_submit
    profile = get_profile("mcf")
    driver = SimulationDriver(config, backend, events, mlp=profile.mlp,
                              workload_name=profile.name)
    trace = iterate_trace(profile, trace_length, seed=11)
    return driver.run(trace, warmup_records=trace_length // 3,
                      on_fault=on_fault)


class TestOnFaultPolicy:
    def test_unknown_policy_is_rejected(self):
        with pytest.raises(ValueError):
            run(on_fault="shrug")

    def test_clean_runs_are_identical_under_both_policies(self):
        assert run(on_fault="raise").to_dict() == \
            run(on_fault="record").to_dict()

    def test_clean_run_reports_completed_clean(self):
        result = run(on_fault="record")
        assert result.completed_clean
        assert result.failures == []

    def test_raise_policy_propagates(self):
        with pytest.raises(IntegrityError):
            run(on_fault="raise", fail_at=40)

    def test_record_policy_returns_a_structured_failure(self):
        result = run(on_fault="record", fail_at=40)
        assert not result.completed_clean
        record = result.failures[0]
        assert record["kind"] == "IntegrityError"
        assert record["fault_kind"] == "mac"
        assert record["index"] == 5
        assert record["expected_counter"] == 9
        assert record["terminal"] is True
        assert "injected mid-run detection" in record["detail"]
        # the partial statistics survived
        assert result.execution_cycles > 0

    def test_failures_survive_serialization(self):
        result = run(on_fault="record", fail_at=40)
        assert result.to_dict()["failures"] == result.failures

    def test_run_simulation_threads_the_policy(self):
        result = run_simulation(small_config(DesignPoint.INDEP_2, seed=11),
                                "mcf", trace_length=300,
                                on_fault="record")
        assert result.completed_clean
