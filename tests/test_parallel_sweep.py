"""Golden-master determinism of the parallel sweep engine.

The ISSUE-level guarantee: ``run_sweep(points, jobs=4)`` is **byte
identical** to ``run_sweep(points, jobs=1)`` — same ``RunResult`` fields
(including the traced ``phase_cycles`` breakdown), same Chrome-trace
export, same submission ordering — no matter how pool workers interleave.
Also covered: the serial fallback when no pool can be created, metrics
folding, and cache interaction of a full sweep.
"""

import pytest

from repro.config import DesignPoint, small_config
from repro.parallel import RunCache, SweepPoint, run_result_to_dict, run_sweep
from repro.parallel.serialize import canonical_json
import repro.parallel.sweep as sweep_module

#: 2 designs x 2 workloads, all traced — the matrix the issue asks for.
POINTS = tuple(
    SweepPoint(design, workload, trace_length=300, collect_trace=True,
               config=small_config(design))
    for design in (DesignPoint.FREECURSIVE, DesignPoint.INDEP_2)
    for workload in ("mcf", "gromacs"))


def result_bytes(outcome):
    """Every observable of a sweep, canonically serialized."""
    return [
        (canonical_json(run_result_to_dict(entry.result)),
         entry.chrome_json,
         entry.from_cache)
        for entry in outcome.results
    ]


@pytest.fixture(scope="module")
def serial_outcome():
    return run_sweep(list(POINTS), jobs=1)


class TestDeterminism:
    def test_parallel_is_byte_identical_to_serial(self, serial_outcome):
        parallel = run_sweep(list(POINTS), jobs=4)
        assert result_bytes(parallel) == result_bytes(serial_outcome)

    def test_phase_cycles_survive_the_pool(self, serial_outcome):
        parallel = run_sweep(list(POINTS), jobs=4)
        for serial_entry, parallel_entry in zip(serial_outcome.results,
                                                parallel.results):
            assert serial_entry.result.phase_cycles
            assert (serial_entry.result.phase_cycles ==
                    parallel_entry.result.phase_cycles)

    def test_chrome_traces_are_identical_and_nonempty(self, serial_outcome):
        parallel = run_sweep(list(POINTS), jobs=4)
        for serial_entry, parallel_entry in zip(serial_outcome.results,
                                                parallel.results):
            assert serial_entry.chrome_json
            assert serial_entry.chrome_json == parallel_entry.chrome_json

    def test_results_come_back_in_submission_order(self, serial_outcome):
        for point, entry in zip(POINTS, serial_outcome.results):
            assert entry.point == point


class TestSerialFallback:
    def test_pool_failure_degrades_to_serial(self, serial_outcome,
                                             monkeypatch):
        sweep_module.shutdown_pools()  # a live warm pool would bypass the patch
        monkeypatch.setattr(sweep_module, "_make_pool",
                            lambda jobs, **kwargs: None)
        fallback = run_sweep(list(POINTS), jobs=4)
        assert result_bytes(fallback) == result_bytes(serial_outcome)

    def test_jobs_one_never_builds_a_pool(self, monkeypatch):
        def boom(jobs, **kwargs):
            raise AssertionError("jobs=1 must not construct a pool")
        sweep_module.shutdown_pools()
        monkeypatch.setattr(sweep_module, "_make_pool", boom)
        outcome = run_sweep([POINTS[0]], jobs=1)
        assert len(outcome.results) == 1


class TestWarmPools:
    def test_pool_is_reused_across_sweeps(self, monkeypatch):
        sweep_module.shutdown_pools()
        builds = []
        real = sweep_module.make_pool

        def counting(jobs, **kwargs):
            builds.append(jobs)
            return real(jobs, **kwargs)

        monkeypatch.setattr(sweep_module, "_make_pool", counting)
        first = run_sweep(list(POINTS), jobs=2)
        second = run_sweep(list(POINTS), jobs=2)
        assert result_bytes(first) == result_bytes(second)
        assert builds == [2]  # second sweep reused the warm pool
        sweep_module.shutdown_pools()

    def test_warm_pool_results_match_serial(self, serial_outcome):
        sweep_module.shutdown_pools()
        run_sweep(list(POINTS[:2]), jobs=2)  # warms the 2-worker pool
        warm = run_sweep(list(POINTS), jobs=2)
        assert result_bytes(warm) == result_bytes(serial_outcome)
        sweep_module.shutdown_pools()

    def test_env_switch_toggle_reaches_warm_pool_workers(self, monkeypatch):
        """A/B switches must not go stale inside a reused warm pool.

        The switches (``REPRO_DISABLE_FASTPATH`` & co) are read once at
        import, so a forked worker inherits whatever they were when the
        pool was built.  Pools are therefore keyed on the env snapshot
        and re-initialized per signature — two sweeps with the switch
        toggled in between must see different fastpath behaviour even
        though both ran at the same ``jobs`` on warm pools.
        """
        sweep_module.shutdown_pools()
        monkeypatch.delenv("REPRO_DISABLE_FASTPATH", raising=False)
        points = list(POINTS[:2])
        enabled = run_sweep(points, jobs=2)
        monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "1")
        disabled = run_sweep(points, jobs=2)
        sweep_module.shutdown_pools()
        for entry in enabled.results:
            assert entry.result.extras["fastpath_hit_rate"] == 1.0
        for entry in disabled.results:
            assert entry.result.extras["fastpath_hit_rate"] == 0.0
        # the cycle observables themselves are switch-invariant
        assert ([entry.result.execution_cycles
                 for entry in enabled.results] ==
                [entry.result.execution_cycles
                 for entry in disabled.results])

    def test_warm_pools_are_keyed_on_env_signature(self, monkeypatch):
        sweep_module.shutdown_pools()
        monkeypatch.delenv("REPRO_DISABLE_FASTPATH", raising=False)
        run_sweep(list(POINTS[:2]), jobs=2)
        keys_before = set(sweep_module._WARM_POOLS)
        monkeypatch.setenv("REPRO_DISABLE_FASTPATH", "1")
        run_sweep(list(POINTS[:2]), jobs=2)
        keys_after = set(sweep_module._WARM_POOLS)
        sweep_module.shutdown_pools()
        assert len(keys_before) == 1 and len(keys_after) == 1
        # the stale same-jobs pool was replaced, not kept alongside
        assert keys_before != keys_after
        assert next(iter(keys_before))[0] == next(iter(keys_after))[0] == 2

    def test_discard_pool_recovers_after_worker_error(self, monkeypatch):
        sweep_module.shutdown_pools()
        bad = SweepPoint(DesignPoint.FREECURSIVE, "no-such-workload",
                         trace_length=300,
                         config=small_config(DesignPoint.FREECURSIVE))
        with pytest.raises(Exception):
            run_sweep([bad, bad], jobs=2)
        assert sweep_module._WARM_POOLS == {}  # broken pool was dropped
        outcome = run_sweep(list(POINTS), jobs=2)
        assert len(outcome.results) == len(POINTS)
        sweep_module.shutdown_pools()


class TestMetrics:
    def test_worker_metrics_fold_into_one_registry(self):
        outcome = run_sweep(list(POINTS[:2]), jobs=2)
        metrics = outcome.metrics.as_dict()
        assert metrics["counters"]["sweep/executed"] == 2
        assert metrics["counters"]["sweep/points"] == 2
        assert metrics["histograms"]["sweep/wall_ms"]["count"] == 2

    def test_jobs_recorded(self):
        outcome = run_sweep([POINTS[0]], jobs=3)
        assert outcome.jobs == 3
        assert outcome.metrics.as_dict()["gauges"]["sweep/jobs"]["last"] == 3


class TestSweepWithCache:
    def test_second_sweep_is_all_hits_and_identical(self, tmp_path,
                                                    serial_outcome):
        cache = RunCache(str(tmp_path / "runs"))
        first = run_sweep(list(POINTS), jobs=2, cache=cache)
        assert all(not entry.from_cache for entry in first.results)
        assert cache.stats.writes == len(POINTS)

        second = run_sweep(list(POINTS), jobs=2, cache=cache)
        assert all(entry.from_cache for entry in second.results)
        # cached bytes match the pool-free serial ground truth
        assert ([bytes_ for bytes_, _, _ in result_bytes(second)] ==
                [bytes_ for bytes_, _, _ in result_bytes(serial_outcome)])
        assert second.cache_stats["hits"] == len(POINTS)

    def test_traced_and_untraced_points_never_share_entries(self, tmp_path):
        cache = RunCache(str(tmp_path / "runs"))
        traced = POINTS[0]
        untraced = SweepPoint(traced.design, traced.workload,
                              trace_length=traced.trace_length,
                              collect_trace=False, config=traced.config)
        run_sweep([traced], jobs=1, cache=cache)
        outcome = run_sweep([untraced], jobs=1, cache=cache)
        assert not outcome.results[0].from_cache
        assert cache.entry_count() == 2
