"""Tests for Path ORAM tree geometry."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.oram.tree import TreeGeometry


class TestGeometryBasics:
    def test_counts(self):
        tree = TreeGeometry(4)
        assert tree.leaf_count == 8
        assert tree.bucket_count == 15

    def test_single_level(self):
        tree = TreeGeometry(1)
        assert tree.leaf_count == 1
        assert tree.bucket_count == 1
        assert tree.path(0) == [0]

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            TreeGeometry(0)

    def test_levels_of_buckets(self):
        tree = TreeGeometry(3)
        assert tree.level_of(0) == 0
        assert tree.level_of(1) == 1
        assert tree.level_of(2) == 1
        assert tree.level_of(3) == 2
        assert tree.level_of(6) == 2

    def test_bucket_at_roundtrip(self):
        tree = TreeGeometry(5)
        for level in range(5):
            for position in range(1 << level):
                bucket = tree.bucket_at(level, position)
                assert tree.level_of(bucket) == level
                assert tree.position_of(bucket) == position

    def test_bounds_checks(self):
        tree = TreeGeometry(3)
        with pytest.raises(ValueError):
            tree.level_of(7)
        with pytest.raises(ValueError):
            tree.path(8)
        with pytest.raises(ValueError):
            tree.bucket_at(3, 0)


class TestPaths:
    def test_path_structure(self):
        tree = TreeGeometry(4)
        assert tree.path(0) == [0, 1, 3, 7]
        assert tree.path(7) == [0, 2, 6, 14]

    def test_path_parent_links(self):
        tree = TreeGeometry(6)
        for leaf in range(tree.leaf_count):
            path = tree.path(leaf)
            assert path[0] == 0
            for upper, lower in zip(path, path[1:]):
                assert tree.parent(lower) == upper

    @given(st.integers(min_value=2, max_value=10), st.data())
    def test_on_path_consistency(self, levels, data):
        tree = TreeGeometry(levels)
        leaf = data.draw(st.integers(min_value=0,
                                     max_value=tree.leaf_count - 1))
        path = set(tree.path(leaf))
        for bucket in range(tree.bucket_count):
            assert tree.on_path(bucket, leaf) == (bucket in path)

    def test_root_on_every_path(self):
        tree = TreeGeometry(5)
        for leaf in range(tree.leaf_count):
            assert tree.on_path(0, leaf)


class TestCommonLevels:
    def test_same_leaf_is_full_depth(self):
        tree = TreeGeometry(6)
        assert tree.deepest_common_level(13, 13) == 5

    def test_opposite_halves_share_only_root(self):
        tree = TreeGeometry(6)
        assert tree.deepest_common_level(0, tree.leaf_count - 1) == 0

    def test_adjacent_leaves(self):
        tree = TreeGeometry(4)
        assert tree.deepest_common_level(0, 1) == 2

    @given(st.integers(min_value=2, max_value=12), st.data())
    def test_matches_path_intersection(self, levels, data):
        tree = TreeGeometry(levels)
        leaf_a = data.draw(st.integers(0, tree.leaf_count - 1))
        leaf_b = data.draw(st.integers(0, tree.leaf_count - 1))
        shared = set(tree.path(leaf_a)) & set(tree.path(leaf_b))
        assert tree.deepest_common_level(leaf_a, leaf_b) == \
            max(tree.level_of(bucket) for bucket in shared)

    def test_symmetry(self):
        tree = TreeGeometry(8)
        assert tree.deepest_common_level(3, 77) == \
            tree.deepest_common_level(77, 3)


class TestSubtreePartitioning:
    def test_two_partitions_split_halves(self):
        tree = TreeGeometry(5)
        half = tree.leaf_count // 2
        assert all(tree.subtree_of_leaf(leaf, 2) == 0
                   for leaf in range(half))
        assert all(tree.subtree_of_leaf(leaf, 2) == 1
                   for leaf in range(half, tree.leaf_count))

    def test_four_partitions(self):
        tree = TreeGeometry(5)
        quarter = tree.leaf_count // 4
        for leaf in range(tree.leaf_count):
            assert tree.subtree_of_leaf(leaf, 4) == leaf // quarter

    def test_subtree_levels(self):
        tree = TreeGeometry(28)
        assert tree.subtree_levels(2) == 27
        assert tree.subtree_levels(4) == 26

    def test_leaves_under(self):
        tree = TreeGeometry(4)
        assert list(tree.leaves_under(0)) == list(range(8))
        assert list(tree.leaves_under(1)) == [0, 1, 2, 3]
        assert list(tree.leaves_under(14)) == [7]

    def test_children(self):
        tree = TreeGeometry(3)
        assert tree.children(0) == [1, 2]
        assert tree.children(3) == []

    def test_parent_of_root_rejected(self):
        with pytest.raises(ValueError):
            TreeGeometry(3).parent(0)
