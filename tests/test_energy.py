"""Tests for the DRAM energy model and the buffer-chip area model."""

import pytest

from repro.config import (
    DesignPoint,
    DramOrganization,
    DramPower,
    DramTiming,
    SdimmConfig,
    table2_config,
)
from repro.energy.area import (
    oram_controller_area_mm2,
    sdimm_buffer_area_mm2,
    sram_area_mm2,
)
from repro.energy.dram_power import DramEnergyModel, EnergyReport
from repro.sim.system import run_simulation


def make_model():
    return DramEnergyModel(DramPower(), DramTiming(), DramOrganization())


class TestPerEventEnergies:
    def test_all_positive(self):
        summary = make_model().per_access_summary()
        assert all(value > 0 for value in summary.values())

    def test_write_burst_costs_more_than_read(self):
        model = make_model()
        assert model.burst_energy_pj(True) > model.burst_energy_pj(False)

    def test_on_dimm_io_cheaper(self):
        model = make_model()
        assert model.io_energy_pj(10, on_dimm=True) < \
            model.io_energy_pj(10, on_dimm=False)

    def test_background_ordering(self):
        """active > standby > power-down; self-refresh lowest-ish."""
        model = make_model()
        assert model.background_power_mw("active") > \
            model.background_power_mw("standby") > \
            model.background_power_mw("power-down")

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            make_model().background_power_mw("hibernate")

    def test_activate_magnitude_sane(self):
        """Activating a full 8 KB DDR3 row costs tens of nanojoules."""
        assert 5_000 < make_model().activate_energy_pj() < 100_000


class TestEnergyReport:
    def test_total_sums_categories(self):
        report = EnergyReport(activate_pj=1, read_write_pj=2, refresh_pj=3,
                              background_pj=4, io_pj=5)
        assert report.total_pj == 15

    def test_normalization(self):
        a = EnergyReport(io_pj=100)
        b = EnergyReport(io_pj=50)
        assert b.normalized_to(a) == 0.5
        with pytest.raises(ValueError):
            a.normalized_to(EnergyReport())

    def test_as_dict_keys(self):
        keys = set(EnergyReport().as_dict())
        assert "total_pj" in keys and "io_pj" in keys


class TestEndToEndEnergy:
    """The Figure 10 direction: SDIMM designs use much less memory energy."""

    TRACE = 2500

    def run_energy(self, design, channels=1):
        config = table2_config(design, channels=channels)
        result = run_simulation(config, "mcf", trace_length=self.TRACE)
        model = DramEnergyModel(config.power, config.timing,
                                config.organization,
                                config.cpu.cpu_cycles_per_mem_cycle)
        return model.report(result)

    def test_freecursive_costs_much_more_than_nonsecure(self):
        nonsecure = self.run_energy(DesignPoint.NONSECURE)
        freecursive = self.run_energy(DesignPoint.FREECURSIVE)
        assert freecursive.total_pj > 2 * nonsecure.total_pj

    def test_sdimm_beats_freecursive(self):
        """Figure 10: SPLIT-2 improves memory energy ~2.4x over
        Freecursive (single channel)."""
        freecursive = self.run_energy(DesignPoint.FREECURSIVE)
        split = self.run_energy(DesignPoint.SPLIT_2)
        ratio = freecursive.total_pj / split.total_pj
        assert ratio > 1.5

    def test_independent_io_stays_on_dimm(self):
        independent = self.run_energy(DesignPoint.INDEP_2)
        freecursive = self.run_energy(DesignPoint.FREECURSIVE)
        assert independent.io_pj < 0.6 * freecursive.io_pj


class TestAreaModel:
    def test_reference_points(self):
        assert sram_area_mm2(8 * 1024, 32) == pytest.approx(0.42)
        assert oram_controller_area_mm2(32) == pytest.approx(0.47)

    def test_paper_claim_under_one_mm2(self):
        assert sdimm_buffer_area_mm2(SdimmConfig(), 32) < 1.0

    def test_area_scales_with_capacity(self):
        assert sram_area_mm2(64 * 1024) > sram_area_mm2(8 * 1024)

    def test_area_scales_with_technology(self):
        assert sram_area_mm2(8 * 1024, 45) > sram_area_mm2(8 * 1024, 32)
        assert sram_area_mm2(8 * 1024, 22) < sram_area_mm2(8 * 1024, 32)

    def test_sublinear_capacity(self):
        """Doubling capacity less than doubles area (periphery amortizes)."""
        assert sram_area_mm2(16 * 1024) < 2 * sram_area_mm2(8 * 1024)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            sram_area_mm2(0)
        with pytest.raises(ValueError):
            sram_area_mm2(1024, 0)
