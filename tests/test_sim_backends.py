"""Tests for the event-driven memory backends."""

import pytest

from repro.config import DesignPoint, small_config, table2_config
from repro.sim.backends import (
    FreecursiveBackend,
    IndependentBackend,
    IndepSplitBackend,
    NonSecureBackend,
    SplitBackend,
)
from repro.sim.events import EventQueue
from repro.sim.system import build_backend
from repro.utils.rng import DeterministicRng


def completed(backend, events, addresses, now=0):
    """Submit reads; return their completion times in submit order."""
    results = {}
    for index, address in enumerate(addresses):
        backend.submit(address, now, False,
                       lambda t, i=index: results.__setitem__(i, t))
    events.run()
    return [results[index] for index in range(len(addresses))]


class TestNonSecureBackend:
    def make(self):
        events = EventQueue()
        return build_backend(table2_config(DesignPoint.NONSECURE,
                                           channels=2), events), events

    def test_read_completes(self):
        backend, events = self.make()
        times = completed(backend, events, [0])
        assert times[0] > 0

    def test_channel_interleaving(self):
        backend, events = self.make()
        completed(backend, events, [0, 1])
        total = sum(channel.counters.accesses
                    for channel in backend.channels)
        assert total == 2
        assert all(channel.counters.accesses == 1
                   for channel in backend.channels)

    def test_row_hits_for_sequential(self):
        backend, events = self.make()
        completed(backend, events, [0, 2, 4, 6])
        channel = backend.channels[0]
        assert channel.counters.row_hits >= 1

    def test_posted_writes_do_not_callback(self):
        backend, events = self.make()
        backend.submit(0, 0, True)
        events.run()
        assert backend.channels[0].counters.writes == 1

    def test_bank_parallelism_beats_serial(self):
        backend, events = self.make()
        # same channel, different banks: completions overlap
        times = completed(backend, events, [0, 256, 512, 768])
        spread = max(times) - min(times)
        assert spread < 4 * 50  # far less than 4 serial accesses


class TestFreecursiveBackend:
    def make(self, channels=1):
        events = EventQueue()
        config = table2_config(DesignPoint.FREECURSIVE, channels=channels)
        return build_backend(config, events), events

    def test_miss_costs_hundreds_of_cycles(self):
        backend, events = self.make()
        times = completed(backend, events, [0])
        assert times[0] > 1000

    def test_backend_is_serial(self):
        backend, events = self.make()
        times = completed(backend, events, [0, 1 << 20])
        assert times[1] > times[0]

    def test_accessorams_counted(self):
        backend, events = self.make()
        completed(backend, events, [0, 64, 128])
        assert backend.counters.accessorams >= 3

    def test_two_channels_faster(self):
        one, events1 = self.make(channels=1)
        addresses = [index << 14 for index in range(8)]
        end1 = max(completed(one, events1, addresses))
        two, events2 = self.make(channels=2)
        end2 = max(completed(two, events2, addresses))
        assert end2 < 0.7 * end1

    def test_oram_cache_shortens_paths(self):
        cached, ev1 = self.make()
        uncached_config = table2_config(DesignPoint.FREECURSIVE,
                                        oram_cache_enabled=False)
        ev2 = EventQueue()
        uncached = build_backend(uncached_config, ev2)
        t_cached = completed(cached, ev1, [0])[0]
        t_uncached = completed(uncached, ev2, [0])[0]
        assert t_uncached > t_cached


class TestIndependentBackend:
    def make(self):
        events = EventQueue()
        config = table2_config(DesignPoint.INDEP_2, channels=1)
        return build_backend(config, events), events

    def test_parallelism_across_sdimms(self):
        """Many simultaneous single-op requests should overlap 2-wide."""
        backend, events = self.make()
        rng = DeterministicRng(7, "addr")
        addresses = [rng.randrange(1 << 22) for _ in range(40)]
        end = max(completed(backend, events, addresses))
        ops = backend.counters.accessorams
        serial_estimate = ops * 1700
        assert end < 0.75 * serial_estimate

    def test_devices_share_load(self):
        backend, events = self.make()
        rng = DeterministicRng(7, "addr")
        completed(backend, events,
                  [rng.randrange(1 << 22) for _ in range(30)])
        counts = [device.path_accesses for device in backend.devices]
        assert min(counts) > 0

    def test_probes_and_appends_counted(self):
        backend, events = self.make()
        completed(backend, events, [0])
        assert backend.counters.probe_commands >= 1
        # one APPEND per SDIMM per accessORAM
        assert backend.counters.append_messages == \
            2 * backend.counters.accessorams

    def test_main_bus_carries_blocks_not_paths(self):
        backend, events = self.make()
        completed(backend, events, [0])
        ops = backend.counters.accessorams
        # ACCESS + FETCH_RESULT + 2 APPENDs = 4 blocks per op on the bus
        assert backend.buses[0].block_transfers == 4 * ops

    def test_internal_channels_carry_the_paths(self):
        backend, events = self.make()
        completed(backend, events, [0])
        internal = sum(channel.counters.accesses
                       for channel in backend.channels)
        lines_per_path = backend.devices[0].dram_path_lines
        assert internal >= 2 * lines_per_path  # read + write of >= 1 path


class TestSplitBackend:
    def make(self, channels=1):
        events = EventQueue()
        design = (DesignPoint.SPLIT_2 if channels == 1
                  else DesignPoint.SPLIT_4)
        config = table2_config(design, channels=channels)
        return build_backend(config, events), events

    def test_lower_latency_than_freecursive(self):
        split, ev1 = self.make()
        t_split = completed(split, ev1, [0])[0]
        ev2 = EventQueue()
        freecursive = build_backend(
            table2_config(DesignPoint.FREECURSIVE, channels=1), ev2)
        t_fc = completed(freecursive, ev2, [0])[0]
        assert t_split < t_fc

    def test_all_members_fetch(self):
        backend, events = self.make()
        completed(backend, events, [0])
        assert all(device.path_accesses > 0 for device in backend.devices)

    def test_metadata_crosses_the_bus(self):
        backend, events = self.make()
        completed(backend, events, [0])
        assert backend.buses[0].line_transfers > 0

    def test_split4_uses_both_channels(self):
        backend, events = self.make(channels=2)
        completed(backend, events, [0])
        assert all(bus.line_transfers > 0 for bus in backend.buses)


class TestIndepSplitBackend:
    def make(self):
        events = EventQueue()
        config = table2_config(DesignPoint.INDEP_SPLIT, channels=2)
        return build_backend(config, events), events

    def test_two_groups_of_two(self):
        backend, events = self.make()
        assert len(backend.groups) == 2
        assert len(backend.devices) == 4

    def test_groups_overlap(self):
        backend, events = self.make()
        rng = DeterministicRng(9, "addr")
        addresses = [rng.randrange(1 << 22) for _ in range(40)]
        end = max(completed(backend, events, addresses))
        ops = backend.counters.accessorams
        serial_estimate = ops * 1000
        assert end < 0.85 * serial_estimate

    def test_appends_broadcast_per_group(self):
        backend, events = self.make()
        completed(backend, events, [0])
        assert backend.counters.append_messages == \
            2 * backend.counters.accessorams


class TestBuildBackend:
    def test_all_designs_buildable(self):
        for design, channels in [
            (DesignPoint.NONSECURE, 1),
            (DesignPoint.FREECURSIVE, 1),
            (DesignPoint.INDEP_2, 1),
            (DesignPoint.SPLIT_2, 1),
            (DesignPoint.INDEP_4, 2),
            (DesignPoint.SPLIT_4, 2),
            (DesignPoint.INDEP_SPLIT, 2),
        ]:
            backend = build_backend(table2_config(design, channels=channels))
            assert backend is not None
