"""Tests for trace records, the synthetic generator, and SPEC profiles."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.spec import (
    SPEC_PROFILES,
    WorkloadProfile,
    get_profile,
    profile_names,
)
from repro.workloads.synthetic import generate_trace, iterate_trace
from repro.workloads.trace import TraceRecord, load_trace, save_trace


class TestTraceRecord:
    def test_valid_record(self):
        record = TraceRecord(10, 0x1000, True)
        assert record.gap_cycles == 10

    def test_rejects_negative_gap(self):
        with pytest.raises(ValueError):
            TraceRecord(-1, 0, False)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            TraceRecord(0, -5, False)

    def test_save_load_roundtrip(self, tmp_path):
        records = [TraceRecord(5, 0xABC, False), TraceRecord(0, 0, True)]
        path = str(tmp_path / "trace.txt")
        assert save_trace(records, path) == 2
        assert load_trace(path) == records

    def test_load_skips_comments(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n5 abc r\n\n0 0 w\n")
        assert len(load_trace(str(path))) == 2

    def test_load_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("5 abc x\n")
        with pytest.raises(ValueError):
            load_trace(str(path))


class TestProfiles:
    def test_ten_benchmarks(self):
        assert len(SPEC_PROFILES) == 10
        assert set(profile_names()) == set(SPEC_PROFILES)

    def test_paper_narrative_mlp(self):
        """gromacs/omnetpp are high-MLP; GemsFDTD is low-MLP."""
        assert get_profile("gromacs").mlp >= 10
        assert get_profile("omnetpp").mlp >= 8
        assert get_profile("GemsFDTD").mlp <= 2

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(KeyError, match="GemsFDTD"):
            get_profile("doom")

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", 1024, 1.5, 4, 10, 0.1, 4, 0.1, 64)
        with pytest.raises(ValueError):
            WorkloadProfile("x", 1024, 0.5, 0, 10, 0.1, 4, 0.1, 64)
        with pytest.raises(ValueError):
            WorkloadProfile("x", 1024, 0.5, 4, 10, 0.7, 4, 0.7, 64)

    def test_footprints_exceed_llc(self):
        """Miss-heavy by construction: footprints dwarf the 2 MB LLC."""
        for profile in SPEC_PROFILES.values():
            assert profile.footprint_bytes > 8 * 2 * 1024 * 1024


class TestGenerator:
    def test_length(self):
        trace = generate_trace(get_profile("mcf"), 500)
        assert len(trace) == 500

    def test_deterministic_per_seed(self):
        profile = get_profile("mcf")
        assert generate_trace(profile, 200, seed=1) == \
            generate_trace(profile, 200, seed=1)
        assert generate_trace(profile, 200, seed=1) != \
            generate_trace(profile, 200, seed=2)

    def test_addresses_within_footprint(self):
        profile = get_profile("gromacs")
        lines = profile.footprint_bytes // 64
        for record in generate_trace(profile, 2000):
            assert 0 <= record.line_address < lines

    def test_write_fraction_approximate(self):
        profile = get_profile("lbm")  # write fraction 0.45
        trace = generate_trace(profile, 5000)
        writes = sum(record.is_write for record in trace)
        assert 0.38 < writes / 5000 < 0.52

    def test_mean_gap_approximate(self):
        profile = get_profile("mcf")
        trace = generate_trace(profile, 5000)
        mean_gap = sum(record.gap_cycles for record in trace) / 5000
        assert 0.8 * profile.mean_gap_cycles < mean_gap < \
            1.2 * profile.mean_gap_cycles

    def test_sequential_fraction_shows_up(self):
        profile = get_profile("libquantum")  # heavy streaming
        trace = generate_trace(profile, 5000)
        sequential = sum(
            1 for previous, current in zip(trace, trace[1:])
            if current.line_address == previous.line_address + 1)
        assert sequential / 5000 > 0.4

    def test_hot_set_reuse(self):
        profile = get_profile("omnetpp")  # hot-set dominated
        trace = generate_trace(profile, 8000)
        addresses = [record.line_address for record in trace]
        unique = len(set(addresses))
        assert unique < 0.6 * len(addresses)

    def test_iterator_streams(self):
        iterator = iterate_trace(get_profile("mcf"), 10)
        assert len(list(iterator)) == 10

    @settings(max_examples=10)
    @given(st.sampled_from(sorted(SPEC_PROFILES)))
    def test_every_profile_generates(self, name):
        trace = generate_trace(get_profile(name), 100)
        assert len(trace) == 100
