"""The persistent run cache: hits, misses, corruption, invalidation."""

import json
import os
import re

import pytest

from repro.config import DesignPoint, small_config
from repro.parallel import RunCache, default_cache_dir
from repro.parallel.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIRNAME
from repro.parallel.serialize import run_result_to_dict
from repro.sim.system import run_simulation

CONFIG = small_config(DesignPoint.FREECURSIVE)


@pytest.fixture(scope="module")
def result():
    return run_simulation(CONFIG, "mcf", trace_length=200)


@pytest.fixture
def cache(tmp_path):
    return RunCache(str(tmp_path / "runs"))


class TestRoundTrip:
    def test_hit_returns_equal_result(self, cache, result):
        key = cache.key_for(CONFIG, "mcf", 200, fingerprint="f1")
        cache.put(key, result, fingerprint="f1")
        entry = cache.get(key)
        assert entry is not None
        assert run_result_to_dict(entry.result) == run_result_to_dict(result)
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_chrome_json_round_trips(self, cache, result):
        key = cache.key_for(CONFIG, "mcf", 200, fingerprint="f1")
        cache.put(key, result, chrome_json='{"traceEvents":[]}',
                  fingerprint="f1")
        entry = cache.get(key)
        assert entry.chrome_json == '{"traceEvents":[]}'

    def test_unknown_key_is_a_miss(self, cache):
        assert cache.get("00" * 32) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0


class TestKeying:
    def test_fingerprint_is_part_of_the_key(self, cache):
        old = cache.key_for(CONFIG, "mcf", 200, fingerprint="old")
        new = cache.key_for(CONFIG, "mcf", 200, fingerprint="new")
        assert old != new

    def test_request_parameters_change_the_key(self, cache):
        base = cache.key_for(CONFIG, "mcf", 200, fingerprint="f")
        assert base != cache.key_for(CONFIG, "lbm", 200, fingerprint="f")
        assert base != cache.key_for(CONFIG, "mcf", 201, fingerprint="f")
        assert base != cache.key_for(CONFIG, "mcf", 200, trace_seed=3,
                                     fingerprint="f")
        assert base != cache.key_for(CONFIG, "mcf", 200, collect_trace=True,
                                     fingerprint="f")

    def test_config_contents_change_the_key(self, cache):
        other = small_config(DesignPoint.FREECURSIVE, seed=99)
        assert (cache.key_for(CONFIG, "mcf", 200, fingerprint="f") !=
                cache.key_for(other, "mcf", 200, fingerprint="f"))

    def test_same_request_same_key(self, cache):
        assert (cache.key_for(CONFIG, "mcf", 200, fingerprint="f") ==
                cache.key_for(CONFIG, "mcf", 200, fingerprint="f"))


class TestCorruption:
    def put_one(self, cache, result):
        key = cache.key_for(CONFIG, "mcf", 200, fingerprint="f1")
        path = cache.put(key, result, fingerprint="f1")
        return key, path

    def test_garbage_file_becomes_miss_and_is_deleted(self, cache, result):
        key, path = self.put_one(cache, result)
        with open(path, "w") as handle:
            handle.write("not json {{{")
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1
        assert cache.stats.misses == 1
        assert not os.path.exists(path)

    def test_tampered_payload_fails_digest_check(self, cache, result):
        key, path = self.put_one(cache, result)
        with open(path) as handle:
            entry = json.load(handle)
        entry["result"]["execution_cycles"] += 1
        with open(path, "w") as handle:
            json.dump(entry, handle)
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1
        assert not os.path.exists(path)

    def test_wrong_schema_rejected(self, cache, result):
        key, path = self.put_one(cache, result)
        with open(path) as handle:
            entry = json.load(handle)
        entry["schema"] = 999
        with open(path, "w") as handle:
            json.dump(entry, handle)
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1

    def test_heals_after_rewrite(self, cache, result):
        key, path = self.put_one(cache, result)
        with open(path, "w") as handle:
            handle.write("garbage")
        assert cache.get(key) is None
        cache.put(key, result, fingerprint="f1")
        assert cache.get(key) is not None


class TestInvalidation:
    def test_prune_stale_removes_old_fingerprints(self, cache, result):
        old_key = cache.key_for(CONFIG, "mcf", 200, fingerprint="old")
        new_key = cache.key_for(CONFIG, "mcf", 200, fingerprint="new")
        cache.put(old_key, result, fingerprint="old")
        cache.put(new_key, result, fingerprint="new")
        assert cache.entry_count() == 2
        assert cache.prune_stale("new") == 1
        assert cache.entry_count() == 1
        assert cache.get(new_key) is not None

    def test_prune_on_missing_directory_is_noop(self, tmp_path):
        cache = RunCache(str(tmp_path / "never-created"))
        assert cache.prune_stale("f") == 0
        assert cache.entry_count() == 0


class TestDefaultDirectory:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "/somewhere/else")
        assert default_cache_dir("/anchor") == "/somewhere/else"

    def test_anchor_used_without_env(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert (default_cache_dir("/anchor") ==
                os.path.join("/anchor", DEFAULT_CACHE_DIRNAME))


class TestDiskStats:
    def test_counts_entries_stale_and_bytes(self, cache, result):
        keep = cache.key_for(CONFIG, "mcf", 200, fingerprint="cur")
        drop = cache.key_for(CONFIG, "lbm", 200, fingerprint="old")
        keep_path = cache.put(keep, result, fingerprint="cur")
        drop_path = cache.put(drop, result, fingerprint="old")
        stats = cache.disk_stats(fingerprint="cur")
        assert stats["entries"] == 2
        assert stats["stale"] == 1
        assert stats["unreadable"] == 0
        assert stats["bytes"] == (os.path.getsize(keep_path)
                                  + os.path.getsize(drop_path))

    def test_unreadable_entry_counts_as_stale(self, cache, result):
        key = cache.key_for(CONFIG, "mcf", 200, fingerprint="cur")
        path = cache.put(key, result, fingerprint="cur")
        with open(path, "w") as handle:
            handle.write("not json")
        stats = cache.disk_stats(fingerprint="cur")
        assert stats == {"entries": 1, "stale": 1, "unreadable": 1,
                         "bytes": os.path.getsize(path)}

    def test_missing_directory_is_empty(self, tmp_path):
        cache = RunCache(str(tmp_path / "never-created"))
        assert cache.disk_stats("f") == {"entries": 0, "stale": 0,
                                         "unreadable": 0, "bytes": 0}


class TestCacheCli:
    """The ``cache stats`` / ``cache prune`` CLI verbs."""

    @pytest.fixture
    def populated(self, tmp_path, result, monkeypatch):
        # The CLI uses the real code fingerprint, so plant one entry
        # under it and one under a fabricated stale fingerprint.
        from repro.parallel.fingerprint import code_fingerprint
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        directory = str(tmp_path / "cli-cache")
        cache = RunCache(directory)
        current = code_fingerprint()
        cache.put(cache.key_for(CONFIG, "mcf", 200, fingerprint=current),
                  result, fingerprint=current)
        cache.put(cache.key_for(CONFIG, "lbm", 200, fingerprint="0" * 64),
                  result, fingerprint="0" * 64)
        return directory

    def test_stats_reports_counts(self, populated, capsys):
        from repro.cli import main
        assert main(["cache", "stats", "--cache-dir", populated]) == 0
        out = capsys.readouterr().out
        assert re.search(r"entries:\s+2", out)
        assert re.search(r"stale:\s+1", out)
        assert populated in out

    def test_prune_removes_only_stale_entries(self, populated, capsys):
        from repro.cli import main
        assert main(["cache", "prune", "--cache-dir", populated]) == 0
        out = capsys.readouterr().out
        assert "removed 1 stale entr" in out
        assert RunCache(populated).entry_count() == 1
        assert main(["cache", "stats", "--cache-dir", populated]) == 0
        assert re.search(r"stale:\s+0", capsys.readouterr().out)

    def test_env_var_supplies_default_directory(self, populated, capsys,
                                                monkeypatch):
        from repro.cli import main
        monkeypatch.setenv(CACHE_DIR_ENV, populated)
        assert main(["cache", "stats"]) == 0
        assert re.search(r"entries:\s+2", capsys.readouterr().out)
