"""The persistent run cache: hits, misses, corruption, invalidation."""

import json
import os

import pytest

from repro.config import DesignPoint, small_config
from repro.parallel import RunCache, default_cache_dir
from repro.parallel.cache import CACHE_DIR_ENV, DEFAULT_CACHE_DIRNAME
from repro.parallel.serialize import run_result_to_dict
from repro.sim.system import run_simulation

CONFIG = small_config(DesignPoint.FREECURSIVE)


@pytest.fixture(scope="module")
def result():
    return run_simulation(CONFIG, "mcf", trace_length=200)


@pytest.fixture
def cache(tmp_path):
    return RunCache(str(tmp_path / "runs"))


class TestRoundTrip:
    def test_hit_returns_equal_result(self, cache, result):
        key = cache.key_for(CONFIG, "mcf", 200, fingerprint="f1")
        cache.put(key, result, fingerprint="f1")
        entry = cache.get(key)
        assert entry is not None
        assert run_result_to_dict(entry.result) == run_result_to_dict(result)
        assert cache.stats.hits == 1
        assert cache.stats.writes == 1

    def test_chrome_json_round_trips(self, cache, result):
        key = cache.key_for(CONFIG, "mcf", 200, fingerprint="f1")
        cache.put(key, result, chrome_json='{"traceEvents":[]}',
                  fingerprint="f1")
        entry = cache.get(key)
        assert entry.chrome_json == '{"traceEvents":[]}'

    def test_unknown_key_is_a_miss(self, cache):
        assert cache.get("00" * 32) is None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0


class TestKeying:
    def test_fingerprint_is_part_of_the_key(self, cache):
        old = cache.key_for(CONFIG, "mcf", 200, fingerprint="old")
        new = cache.key_for(CONFIG, "mcf", 200, fingerprint="new")
        assert old != new

    def test_request_parameters_change_the_key(self, cache):
        base = cache.key_for(CONFIG, "mcf", 200, fingerprint="f")
        assert base != cache.key_for(CONFIG, "lbm", 200, fingerprint="f")
        assert base != cache.key_for(CONFIG, "mcf", 201, fingerprint="f")
        assert base != cache.key_for(CONFIG, "mcf", 200, trace_seed=3,
                                     fingerprint="f")
        assert base != cache.key_for(CONFIG, "mcf", 200, collect_trace=True,
                                     fingerprint="f")

    def test_config_contents_change_the_key(self, cache):
        other = small_config(DesignPoint.FREECURSIVE, seed=99)
        assert (cache.key_for(CONFIG, "mcf", 200, fingerprint="f") !=
                cache.key_for(other, "mcf", 200, fingerprint="f"))

    def test_same_request_same_key(self, cache):
        assert (cache.key_for(CONFIG, "mcf", 200, fingerprint="f") ==
                cache.key_for(CONFIG, "mcf", 200, fingerprint="f"))


class TestCorruption:
    def put_one(self, cache, result):
        key = cache.key_for(CONFIG, "mcf", 200, fingerprint="f1")
        path = cache.put(key, result, fingerprint="f1")
        return key, path

    def test_garbage_file_becomes_miss_and_is_deleted(self, cache, result):
        key, path = self.put_one(cache, result)
        with open(path, "w") as handle:
            handle.write("not json {{{")
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1
        assert cache.stats.misses == 1
        assert not os.path.exists(path)

    def test_tampered_payload_fails_digest_check(self, cache, result):
        key, path = self.put_one(cache, result)
        with open(path) as handle:
            entry = json.load(handle)
        entry["result"]["execution_cycles"] += 1
        with open(path, "w") as handle:
            json.dump(entry, handle)
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1
        assert not os.path.exists(path)

    def test_wrong_schema_rejected(self, cache, result):
        key, path = self.put_one(cache, result)
        with open(path) as handle:
            entry = json.load(handle)
        entry["schema"] = 999
        with open(path, "w") as handle:
            json.dump(entry, handle)
        assert cache.get(key) is None
        assert cache.stats.corruptions == 1

    def test_heals_after_rewrite(self, cache, result):
        key, path = self.put_one(cache, result)
        with open(path, "w") as handle:
            handle.write("garbage")
        assert cache.get(key) is None
        cache.put(key, result, fingerprint="f1")
        assert cache.get(key) is not None


class TestInvalidation:
    def test_prune_stale_removes_old_fingerprints(self, cache, result):
        old_key = cache.key_for(CONFIG, "mcf", 200, fingerprint="old")
        new_key = cache.key_for(CONFIG, "mcf", 200, fingerprint="new")
        cache.put(old_key, result, fingerprint="old")
        cache.put(new_key, result, fingerprint="new")
        assert cache.entry_count() == 2
        assert cache.prune_stale("new") == 1
        assert cache.entry_count() == 1
        assert cache.get(new_key) is not None

    def test_prune_on_missing_directory_is_noop(self, tmp_path):
        cache = RunCache(str(tmp_path / "never-created"))
        assert cache.prune_stale("f") == 0
        assert cache.entry_count() == 0


class TestDefaultDirectory:
    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(CACHE_DIR_ENV, "/somewhere/else")
        assert default_cache_dir("/anchor") == "/somewhere/else"

    def test_anchor_used_without_env(self, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        assert (default_cache_dir("/anchor") ==
                os.path.join("/anchor", DEFAULT_CACHE_DIRNAME))
