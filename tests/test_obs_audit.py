"""The adversary bus-trace audit: the threat model, executed in CI.

The load-bearing assertions of ISSUE 2's acceptance criteria live here:
every Figure-8 design's adversary-visible trace must be indistinguishable
across address streams, and a seeded fault injection (a real leaf bit
wired into a FETCH_RESULT payload size) must be *detected* — otherwise
the audit is vacuous.
"""

import pytest

from repro.obs.audit import (FORBIDDEN_ADVERSARY_ARGS, AuditResult,
                             adversary_observations, audit_address_streams,
                             audit_freecursive_protocol,
                             audit_indep_split_protocol,
                             audit_independent_protocol,
                             audit_split_protocol, audit_timing_design,
                             compare_observables, run_full_audit,
                             scan_secret_args)
from repro.obs.tracer import TraceEvent


class TestAddressStreams:
    def test_streams_differ_and_b_reuses(self):
        stream_a, stream_b = audit_address_streams(32, span=1 << 10)
        assert stream_a != stream_b
        assert len(stream_a) == len(stream_b) == 32
        # Stream B must be reuse-heavy: repeated addresses carry freshly
        # remapped leaves, which is what breaks the relabeling symmetry
        # that would otherwise let a leaf-parity leak cancel out.
        assert len(set(stream_b)) < len(stream_b)

    def test_streams_are_deterministic(self):
        assert (audit_address_streams(16, seed=5) ==
                audit_address_streams(16, seed=5))


class TestTimingTierAudit:
    @pytest.mark.parametrize("design", ["freecursive", "indep-2", "split-2"])
    def test_figure8_designs_are_indistinguishable(self, design):
        result = audit_timing_design(design, misses=6)
        assert result.passed, result.describe()

    def test_nonsecure_is_distinguishable(self):
        # Negative control: the non-secure baseline's row/bank activity IS
        # the address stream, so the audit must flag it.
        result = audit_timing_design("nonsecure", misses=6)
        assert not result.passed
        assert result.first_divergence is not None


class TestProtocolTierAudit:
    @pytest.fixture(scope="class")
    def streams(self):
        return audit_address_streams(32, span=1 << 10)

    def test_independent(self, streams):
        result = audit_independent_protocol(*streams)
        assert result.passed, result.describe()

    def test_split(self, streams):
        result = audit_split_protocol(*streams)
        assert result.passed, result.describe()

    def test_indep_split(self, streams):
        result = audit_indep_split_protocol(*streams)
        assert result.passed, result.describe()

    def test_freecursive(self, streams):
        result = audit_freecursive_protocol(*streams)
        assert result.passed, result.describe()

    def test_injected_leak_is_detected(self, streams):
        # The audit must have teeth: wiring posmap leaf parity into the
        # FETCH_RESULT payload size must render the traces distinguishable.
        result = audit_independent_protocol(*streams, inject_leak=True)
        assert not result.passed
        assert result.first_divergence is not None
        index, seen_a, seen_b = result.first_divergence
        assert seen_a != seen_b


class TestShardedRoutingAudit:
    @pytest.fixture(scope="class")
    def streams(self):
        return audit_address_streams(32, span=1 << 10)

    def test_routing_is_not_visible_on_the_link(self, streams):
        from repro.obs.audit import audit_sharded_routing

        result = audit_sharded_routing(*streams)
        assert result.passed, result.describe()
        assert result.length_a > 0

    def test_holds_for_wider_rings(self, streams):
        from repro.obs.audit import audit_sharded_routing

        result = audit_sharded_routing(*streams, shards=4, subtrees=16,
                                       levels=7)
        assert result.passed, result.describe()

    def test_exposed_shard_identity_is_caught(self, streams):
        # Negative control: the shard index is a function of the address,
        # so a deployment that lets the adversary tell shards apart is
        # address-distinguishable and the audit must flag it.
        from repro.obs.audit import audit_sharded_routing

        result = audit_sharded_routing(*streams, expose_shard=True)
        assert not result.passed
        assert result.first_divergence is not None


class TestSecretArgScreen:
    def test_clean_events_pass(self):
        events = [TraceEvent("span", "burst", "dram", "main0", 0, 4,
                             {"bank": 1, "row": 9})]
        assert scan_secret_args(events) == []

    def test_forbidden_arg_is_flagged(self):
        assert "leaf" in FORBIDDEN_ADVERSARY_ARGS
        events = [TraceEvent("instant", "issue", "bus", "bus0", 3, 0,
                             {"leaf": 42})]
        violations = scan_secret_args(events)
        assert violations and "leaf" in violations[0]

    def test_real_run_traces_carry_no_secret_args(self):
        from repro.config import DesignPoint, small_config
        from repro.obs.tracer import CollectingTracer
        from repro.sim.system import run_simulation

        tracer = CollectingTracer()
        run_simulation(small_config(DesignPoint.INDEP_2), "mcf",
                       trace_length=400, tracer=tracer)
        assert scan_secret_args(adversary_observations(tracer.events)) == []


class TestCompareObservables:
    def test_identical_streams_pass(self):
        result = compare_observables("t", "unit", [1, 2], [1, 2], [])
        assert isinstance(result, AuditResult)
        assert result.passed

    def test_divergence_is_located(self):
        result = compare_observables("t", "unit", [1, 2, 3], [1, 9, 3], [])
        assert not result.passed
        assert result.first_divergence[0] == 1

    def test_length_mismatch_fails(self):
        assert not compare_observables("t", "unit", [1], [1, 2], []).passed


class TestFullAudit:
    def test_full_audit_is_sound(self):
        results = run_full_audit(misses=6, accesses=24)
        assert len(results) >= 8
        by_name = {result.name: result for result in results}
        negatives = [name for name in by_name
                     if name.startswith("negative-control:")]
        assert negatives, "the audit must include a negative control"
        for name, result in by_name.items():
            if name.startswith("negative-control:"):
                assert not result.passed, f"{name} vacuously passed"
            else:
                assert result.passed, result.describe()


class TestCliVerb:
    def test_audit_trace_exit_code(self, capsys):
        from repro.cli import main

        code = main(["audit-trace", "--misses", "5", "--accesses", "16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "negative-control" in out
