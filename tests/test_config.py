"""Tests for configuration dataclasses and Table II presets."""

import dataclasses

import pytest

from repro.config import (
    CpuConfig,
    DesignPoint,
    DramOrganization,
    DramPower,
    DramTiming,
    OramConfig,
    SchedulerConfig,
    SdimmConfig,
    SystemConfig,
    small_config,
    table2_config,
)


class TestDramOrganization:
    def test_table2_capacity_is_16gb_per_channel(self):
        org = DramOrganization()
        assert org.channel_bytes == 16 * 2**30

    def test_rank_capacity(self):
        org = DramOrganization()
        assert org.rank_bytes == 2 * 2**30

    def test_ranks_per_channel(self):
        assert DramOrganization().ranks_per_channel == 8

    def test_rejects_non_power_of_two_banks(self):
        org = dataclasses.replace(DramOrganization(), banks_per_rank=6)
        with pytest.raises(ValueError):
            org.validate()


class TestDramTiming:
    def test_default_is_consistent(self):
        DramTiming().validate()

    def test_rejects_short_trc(self):
        timing = dataclasses.replace(DramTiming(), trc=10)
        with pytest.raises(ValueError):
            timing.validate()


class TestDramPower:
    def test_default_is_consistent(self):
        DramPower().validate()

    def test_on_dimm_io_must_be_cheaper(self):
        power = dataclasses.replace(DramPower(), io_on_dimm_pj_per_bit=9.0)
        with pytest.raises(ValueError):
            power.validate()


class TestOramConfig:
    def test_tree_geometry(self):
        oram = OramConfig(levels=4)
        assert oram.leaf_count == 8
        assert oram.bucket_count == 15

    def test_lines_per_bucket_includes_metadata(self):
        assert OramConfig().lines_per_bucket == 5

    def test_path_lines_excludes_cached_levels(self):
        oram = OramConfig(levels=28, cached_levels=7)
        assert oram.path_lines == 21 * 5

    def test_rejects_caching_everything(self):
        oram = OramConfig(levels=5, cached_levels=5)
        with pytest.raises(ValueError):
            oram.validate()

    def test_rejects_tiny_stash(self):
        oram = OramConfig(levels=28, stash_capacity=10)
        with pytest.raises(ValueError):
            oram.validate()

    def test_with_levels(self):
        assert OramConfig().with_levels(20).levels == 20


class TestSchedulerConfig:
    def test_paper_watermarks(self):
        config = SchedulerConfig()
        assert config.write_queue_capacity == 64
        assert config.write_drain_high == 40

    def test_rejects_inverted_watermarks(self):
        config = SchedulerConfig(write_drain_high=5, write_drain_low=10)
        with pytest.raises(ValueError):
            config.validate()


class TestSystemConfig:
    def test_table2_single_channel(self):
        config = table2_config(channels=1)
        assert config.total_memory_bytes == 16 * 2**30
        assert config.oram.levels == 27

    def test_table2_double_channel(self):
        config = table2_config(channels=2)
        assert config.total_memory_bytes == 32 * 2**30
        assert config.oram.levels == 28

    def test_sdimm_count_for_designs(self):
        assert table2_config(DesignPoint.FREECURSIVE).sdimm_count == 0
        assert table2_config(DesignPoint.INDEP_2, channels=1).sdimm_count == 2
        assert table2_config(DesignPoint.INDEP_SPLIT,
                             channels=2).sdimm_count == 4

    def test_indep4_requires_two_channels(self):
        with pytest.raises(ValueError):
            table2_config(DesignPoint.INDEP_4, channels=1)

    def test_cache_disabled_zeroes_effective_levels(self):
        config = table2_config(oram_cache_enabled=False)
        assert config.effective_cached_levels == 0

    def test_small_config_validates(self):
        config = small_config(levels=10)
        config.validate()
        assert config.oram.levels == 10

    def test_cpu_defaults_match_table2(self):
        cpu = CpuConfig()
        assert cpu.llc_bytes == 2 * 2**20
        assert cpu.llc_assoc == 8
        assert cpu.rob_entries == 128

    def test_sdimm_config_validates(self):
        SdimmConfig().validate()

    def test_sdimm_rejects_bad_drain_probability(self):
        with pytest.raises(ValueError):
            SdimmConfig(drain_probability=1.5).validate()

    def test_designs_are_unique_strings(self):
        values = [design.value for design in DesignPoint]
        assert len(values) == len(set(values))
