"""Self-check: the entire ``src/`` tree must satisfy reprolint.

This is the tier-1 hook the lint subsystem exists for: every future PR
runs these assertions, so a reintroduced timing-unsafe comparison, a
stray ``time.time()`` or a float leaking into cycle accounting fails CI
the same way a broken unit test would.  Suppressions with recorded
justifications are allowed (and counted); unexplained findings are not.
"""

import os

from repro.lint import lint_paths

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src", "repro")


class TestSourceTreeClean:
    def test_src_tree_has_no_findings(self):
        result = lint_paths([SRC])
        rendered = "\n".join(finding.render()
                             for finding in result.findings)
        assert result.findings == [], f"reprolint findings:\n{rendered}"

    def test_src_tree_has_no_file_errors(self):
        result = lint_paths([SRC])
        assert result.errors == []

    def test_whole_tree_was_actually_scanned(self):
        # Guard against the self-check silently passing because discovery
        # broke: the tree has dozens of modules, all of which must parse.
        result = lint_paths([SRC])
        assert result.files_checked >= 75

    def test_obs_subsystem_is_covered(self):
        # The observability tree must lint clean on its own — and SEC002
        # must actually consider it in scope, so a secret-tainted branch
        # in an exporter (event presence keyed on a leaf ID) is caught.
        obs = os.path.join(SRC, "obs")
        result = lint_paths([obs])
        assert result.files_checked >= 5
        assert result.findings == []
        from repro.lint.rules.sec002 import SecretDependentBranch
        assert any("obs" in marker
                   for marker in SecretDependentBranch.path_markers)

    def test_suppressions_stay_bounded(self):
        # Every suppression is a recorded debt with a justification; a
        # jump in this number means someone is silencing the linter
        # instead of fixing code.  Raise deliberately, not accidentally.
        result = lint_paths([SRC])
        assert result.suppressed_count <= 25
