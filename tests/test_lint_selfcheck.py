"""Self-check: the entire ``src/`` tree must satisfy reprolint.

This is the tier-1 hook the lint subsystem exists for: every future PR
runs these assertions, so a reintroduced timing-unsafe comparison, a
stray ``time.time()``, a float leaking into cycle accounting, or a new
secret-dependent branch anywhere in the call graph fails CI the same
way a broken unit test would.  Suppressions with recorded
justifications are allowed (and counted); unexplained findings are not.

The interprocedural pass (SEC003/SEC004) replaced most of the old
per-function SEC002 directives: the precise engine proved them
unnecessary, and the survivors were re-justified and retagged.  The
caps below keep both numbers from creeping back up.
"""

import os
import re

import pytest

from repro.lint import lint_paths

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src", "repro")

_DIRECTIVE = re.compile(r"#\s*reprolint:\s*disable")


@pytest.fixture(scope="module")
def src_result():
    return lint_paths([SRC], warn_unused_suppressions=True)


def _directive_sites(*subdirs):
    sites = []
    for subdir in subdirs:
        for directory, _, files in os.walk(os.path.join(SRC, subdir)):
            for name in files:
                if not name.endswith(".py"):
                    continue
                path = os.path.join(directory, name)
                with open(path, "r", encoding="utf-8") as handle:
                    for lineno, line in enumerate(handle, start=1):
                        if _DIRECTIVE.search(line):
                            sites.append((path, lineno))
    return sites


class TestSourceTreeClean:
    def test_src_tree_has_no_findings(self, src_result):
        rendered = "\n".join(finding.render()
                             for finding in src_result.findings)
        assert src_result.findings == [], f"reprolint findings:\n{rendered}"

    def test_src_tree_has_no_file_errors(self, src_result):
        assert src_result.errors == []

    def test_whole_tree_was_actually_scanned(self, src_result):
        # Guard against the self-check silently passing because discovery
        # broke: the tree has dozens of modules, all of which must parse.
        assert src_result.files_checked >= 100

    def test_no_unused_suppressions(self, src_result):
        # The shared run has --warn-unused-suppressions on, so every
        # directive in the tree must still silence something (LINT001
        # findings would fail test_src_tree_has_no_findings too; this
        # assertion keeps the intent legible on its own).
        assert all(finding.rule_id != "LINT001"
                   for finding in src_result.findings)

    def test_obs_subsystem_is_covered(self):
        # The observability tree must lint clean on its own — and the
        # secret-flow rules must actually consider it in scope, so a
        # secret-tainted branch in an exporter is caught.
        obs = os.path.join(SRC, "obs")
        result = lint_paths([obs])
        # tracer/metrics/audit/chrome plus the PR7 performance layer
        # (ledger/timeseries/profile/regress) must all be in scope
        assert result.files_checked >= 9
        assert result.findings == []
        names = {name for name in os.listdir(obs) if name.endswith(".py")}
        for module in ("ledger.py", "timeseries.py", "profile.py",
                       "regress.py"):
            assert module in names
        from repro.lint.rules.sec002 import SecretDependentBranch
        from repro.lint.rules.sec003 import InterproceduralSecretFlow
        for rule in (SecretDependentBranch, InterproceduralSecretFlow):
            assert any("obs" in marker for marker in rule.path_markers)

    def test_serve_shard_tier_is_covered(self):
        # The sharded serving tier ships pool-worker code, so the
        # cross-process determinism rule must have it in scope and find
        # nothing: workers re-derive everything from the picklable spec.
        serve = os.path.join(SRC, "serve")
        result = lint_paths([serve])
        assert result.files_checked >= 7
        assert result.findings == []
        names = {name for name in os.listdir(serve) if name.endswith(".py")}
        for module in ("shard.py", "router.py"):
            assert module in names
        from repro.lint.rules.det003 import CrossProcessDeterminism
        assert any("serve" in marker
                   for marker in CrossProcessDeterminism.path_markers)

    def test_suppressions_stay_bounded(self, src_result):
        # Every suppression is a recorded debt with a justification; a
        # jump in this number means someone is silencing the linter
        # instead of fixing code.  Raise deliberately, not accidentally.
        assert src_result.suppressed_count <= 10

    def test_core_and_stash_directive_sites_stay_bounded(self):
        # The interprocedural engine retired the per-function SEC002
        # directives in the protocol layers; the handful that survive
        # carry documented, re-audited justifications.
        sites = _directive_sites("core", "oram")
        assert len(sites) <= 8, sites

    def test_parallel_run_matches_serial(self):
        serial = lint_paths([SRC], jobs=1)
        parallel = lint_paths([SRC], jobs=4)
        assert [f.render() for f in parallel.findings] == \
            [f.render() for f in serial.findings]
        assert parallel.suppressed_count == serial.suppressed_count
        assert parallel.files_checked == serial.files_checked
