"""Stateful property tests: every ORAM implementation vs a dict model.

A hypothesis rule-based state machine performs arbitrary interleavings of
reads, writes, and overwrites against each implementation and checks the
result against a plain dictionary after every step.  This is the strongest
correctness net in the suite: it exercises block migration, transfer-queue
residency, stash leftovers, PLB evictions, and split-stash compaction in
combinations no hand-written scenario covers.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.config import OramConfig
from repro.core.indep_split import IndepSplitProtocol
from repro.core.independent import IndependentProtocol
from repro.core.messages import WiredIndependentProtocol
from repro.core.split import SplitProtocol
from repro.oram.freecursive import FreecursiveOram
from repro.oram.path_oram import Op, PathOram
from repro.oram.recursive import RecursiveOram
from repro.utils.rng import DeterministicRng

BLOCK = 64
ADDRESSES = st.integers(min_value=0, max_value=23)
VALUES = st.integers(min_value=0, max_value=255)


def payload(value):
    return bytes([value]) * BLOCK


class OramModelMachine(RuleBasedStateMachine):
    """Shared machine body; subclasses provide make_oram()."""

    def make_oram(self):
        raise NotImplementedError

    @initialize()
    def setup(self):
        self.oram = self.make_oram()
        self.model = {}

    @rule(address=ADDRESSES, value=VALUES)
    def write(self, address, value):
        self.oram.write(address, payload(value))
        self.model[address] = payload(value)

    @rule(address=ADDRESSES)
    def read(self, address):
        expected = self.model.get(address, bytes(BLOCK))
        assert self.oram.read(address) == expected

    @rule(address=ADDRESSES, first=VALUES, second=VALUES)
    def overwrite(self, address, first, second):
        self.oram.write(address, payload(first))
        self.oram.write(address, payload(second))
        self.model[address] = payload(second)

    @invariant()
    def spot_check_one_block(self):
        if self.model:
            address = next(iter(self.model))
            assert self.oram.read(address) == self.model[address]


class _PathOramAdapter:
    """Give PathOram the read/write surface the machine expects."""

    def __init__(self, oram: PathOram):
        self._oram = oram

    def read(self, address):
        return self._oram.access(address, Op.READ)

    def write(self, address, data):
        self._oram.access(address, Op.WRITE, data)


class PathOramMachine(OramModelMachine):
    def make_oram(self):
        return _PathOramAdapter(PathOram(
            levels=6, blocks_per_bucket=4, block_bytes=BLOCK,
            stash_capacity=200, rng=DeterministicRng(5, "sm-path")))


class RecursiveMachine(OramModelMachine):
    def make_oram(self):
        return RecursiveOram(data_blocks=64, block_bytes=BLOCK,
                             blocks_per_bucket=4, stash_capacity=200,
                             rng=DeterministicRng(5, "sm-rec"),
                             onchip_entries=4)


class FreecursiveMachine(OramModelMachine):
    def make_oram(self):
        config = OramConfig(levels=12, cached_levels=3,
                            recursive_posmaps=2, plb_bytes=1024,
                            plb_assoc=2)
        return FreecursiveOram(config, DeterministicRng(5, "sm-free"),
                               data_levels=8)


class IndependentMachine(OramModelMachine):
    def make_oram(self):
        return IndependentProtocol(global_levels=7, sdimm_count=2,
                                   block_bytes=BLOCK, stash_capacity=200,
                                   drain_probability=0.2, seed=5)


class SplitMachine(OramModelMachine):
    def make_oram(self):
        return SplitProtocol(levels=6, ways=2, block_bytes=BLOCK,
                             stash_capacity=200, seed=5)


class IndepSplitMachine(OramModelMachine):
    def make_oram(self):
        return IndepSplitProtocol(global_levels=7, groups=2, ways=2,
                                  block_bytes=BLOCK, stash_capacity=200,
                                  drain_probability=0.2, seed=5)


class WiredIndependentMachine(OramModelMachine):
    def make_oram(self):
        return WiredIndependentProtocol(global_levels=7, sdimm_count=2,
                                        block_bytes=BLOCK,
                                        stash_capacity=200, seed=5)


_SETTINGS = settings(max_examples=12, stateful_step_count=14,
                     deadline=None)

TestPathOramMachine = PathOramMachine.TestCase
TestPathOramMachine.settings = _SETTINGS
TestRecursiveMachine = RecursiveMachine.TestCase
TestRecursiveMachine.settings = _SETTINGS
TestFreecursiveMachine = FreecursiveMachine.TestCase
TestFreecursiveMachine.settings = _SETTINGS
TestIndependentMachine = IndependentMachine.TestCase
TestIndependentMachine.settings = _SETTINGS
TestSplitMachine = SplitMachine.TestCase
TestSplitMachine.settings = _SETTINGS
TestIndepSplitMachine = IndepSplitMachine.TestCase
TestIndepSplitMachine.settings = _SETTINGS
TestWiredIndependentMachine = WiredIndependentMachine.TestCase
TestWiredIndependentMachine.settings = _SETTINGS
