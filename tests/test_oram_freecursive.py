"""Tests for the functional Freecursive ORAM (PLB + backends)."""

from repro.config import OramConfig
from repro.oram.freecursive import FreecursiveOram
from repro.utils.rng import DeterministicRng


def make_freecursive(plb_enabled=True, levels=14):
    config = OramConfig(levels=levels, cached_levels=3, recursive_posmaps=3,
                        plb_bytes=2048, plb_assoc=4)
    return FreecursiveOram(config, DeterministicRng(9, "fc"),
                           data_levels=10, plb_enabled=plb_enabled)


class TestFreecursiveCorrectness:
    def test_read_after_write(self):
        oram = make_freecursive()
        oram.write(42, b"Q" * 64)
        assert oram.read(42) == b"Q" * 64

    def test_unwritten_reads_zero(self):
        oram = make_freecursive()
        assert oram.read(3) == bytes(64)

    def test_many_addresses(self):
        oram = make_freecursive()
        for address in range(0, 400, 13):
            oram.write(address, address.to_bytes(2, "little") * 32)
        for address in range(0, 400, 13):
            assert oram.read(address) == address.to_bytes(2, "little") * 32

    def test_correct_with_plb_disabled(self):
        oram = make_freecursive(plb_enabled=False)
        oram.write(42, b"Q" * 64)
        assert oram.read(42) == b"Q" * 64


class TestFreecursiveEfficiency:
    def test_plb_reduces_accesses(self):
        """The whole point of Freecursive: far fewer path accesses."""
        with_plb = make_freecursive(plb_enabled=True)
        without_plb = make_freecursive(plb_enabled=False)
        for oram in (with_plb, without_plb):
            for round_number in range(5):
                for address in range(0, 64):
                    oram.read(address)
        assert with_plb.total_path_accesses < \
            0.6 * without_plb.total_path_accesses

    def test_locality_drives_ratio_toward_one(self):
        oram = make_freecursive()
        for _ in range(40):
            for address in range(16):
                oram.read(address)
        assert oram.accesses_per_request < 1.2

    def test_random_traffic_ratio_above_one(self):
        oram = make_freecursive()
        rng = DeterministicRng(11, "addrs")
        for _ in range(300):
            oram.read(rng.randrange(1 << 16))
        assert oram.accesses_per_request > 1.05

    def test_backend_accesses_match_frontend_count(self):
        oram = make_freecursive()
        for address in range(50):
            oram.read(address * 97)
        assert oram.total_path_accesses == oram.frontend.accesses


def make_unified(levels=14):
    config = OramConfig(levels=levels, cached_levels=3, recursive_posmaps=3,
                        plb_bytes=2048, plb_assoc=4)
    return FreecursiveOram(config, DeterministicRng(9, "fc-uni"),
                           data_levels=10, unified_tree=True)


class TestUnifiedTree:
    """Fletcher et al. (and the paper) store all ORAMs in one tree."""

    def test_read_after_write(self):
        oram = make_unified()
        oram.write(42, b"U" * 64)
        assert oram.read(42) == b"U" * 64

    def test_many_addresses(self):
        oram = make_unified()
        for address in range(0, 200, 7):
            oram.write(address, address.to_bytes(2, "little") * 32)
        for address in range(0, 200, 7):
            assert oram.read(address) == address.to_bytes(2, "little") * 32

    def test_single_shared_tree(self):
        oram = make_unified()
        assert len({id(level) for level in oram.orams}) == 1

    def test_posmap_and_data_share_paths(self):
        """Every access, PosMap or data, is a path of the one tree — the
        leakage-free property unification buys."""
        oram = make_unified()
        oram.read(7)
        shared = oram.orams[0]
        assert shared.access_count == oram.frontend.accesses

    def test_accounting_not_double_counted(self):
        oram = make_unified()
        oram.read(1)
        assert oram.total_path_accesses == oram.frontend.accesses

    def test_namespacing_keeps_levels_apart(self):
        """Data block 5 and PosMap block 5 must not collide."""
        oram = make_unified()
        oram.write(5, b"D" * 64)
        # force PosMap traffic around block address 5 at higher levels
        for address in range(0, 90, 5):
            oram.read(address)
        assert oram.read(5) == b"D" * 64
