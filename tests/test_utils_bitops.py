"""Unit and property tests for bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    bit_slice,
    ceil_div,
    ceil_log2,
    extract_bits,
    insert_bits,
    is_power_of_two,
    log2_exact,
    merge_bit_slices,
    merge_bits_round_robin,
    split_bits_round_robin,
)


class TestPowerOfTwo:
    def test_accepts_powers(self):
        for exponent in range(20):
            assert is_power_of_two(1 << exponent)

    def test_rejects_non_powers(self):
        for value in (0, -1, -4, 3, 6, 12, 100):
            assert not is_power_of_two(value)

    def test_log2_exact_roundtrip(self):
        for exponent in range(30):
            assert log2_exact(1 << exponent) == exponent

    def test_log2_exact_rejects_non_power(self):
        with pytest.raises(ValueError):
            log2_exact(12)

    def test_log2_exact_rejects_zero(self):
        with pytest.raises(ValueError):
            log2_exact(0)


class TestCeilHelpers:
    def test_ceil_log2_boundaries(self):
        assert ceil_log2(1) == 0
        assert ceil_log2(2) == 1
        assert ceil_log2(3) == 2
        assert ceil_log2(4) == 2
        assert ceil_log2(5) == 3

    def test_ceil_log2_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ceil_log2(0)

    def test_ceil_div(self):
        assert ceil_div(10, 5) == 2
        assert ceil_div(11, 5) == 3
        assert ceil_div(0, 5) == 0

    def test_ceil_div_rejects_bad_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(10, 0)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_ceil_log2_property(self, value):
        bits = ceil_log2(value)
        assert (1 << bits) >= value
        if bits:
            assert (1 << (bits - 1)) < value


class TestBitFields:
    def test_extract(self):
        assert extract_bits(0b110110, 1, 3) == 0b011
        assert extract_bits(0xFF, 4, 4) == 0xF

    def test_insert(self):
        assert insert_bits(0, 4, 4, 0xA) == 0xA0
        assert insert_bits(0xFF, 0, 4, 0) == 0xF0

    def test_insert_rejects_overflow(self):
        with pytest.raises(ValueError):
            insert_bits(0, 0, 2, 4)

    @given(st.integers(min_value=0, max_value=2**40 - 1),
           st.integers(min_value=0, max_value=30),
           st.integers(min_value=0, max_value=10))
    def test_insert_extract_roundtrip(self, value, low, width):
        field = extract_bits(value, low, width)
        assert extract_bits(insert_bits(value, low, width, field),
                            low, width) == field


class TestByteSlicing:
    def test_two_way_slices(self):
        data = bytes(range(8))
        assert bit_slice(data, 0, 2) == bytes([0, 2, 4, 6])
        assert bit_slice(data, 1, 2) == bytes([1, 3, 5, 7])

    def test_rejects_bad_way(self):
        with pytest.raises(ValueError):
            bit_slice(b"abcd", 2, 2)

    @given(st.binary(max_size=128), st.integers(min_value=1, max_value=5))
    def test_slice_merge_roundtrip(self, data, ways):
        slices = [bit_slice(data, way, ways) for way in range(ways)]
        assert merge_bit_slices(slices) == data

    @given(st.binary(min_size=1, max_size=64))
    def test_no_slice_alone_reconstructs(self, data):
        left = bit_slice(data, 0, 2)
        right = bit_slice(data, 1, 2)
        assert len(left) + len(right) == len(data)


class TestRoundRobinBits:
    @given(st.integers(min_value=0, max_value=2**48 - 1),
           st.integers(min_value=1, max_value=6))
    def test_split_merge_roundtrip(self, value, ways):
        parts = split_bits_round_robin(value, 48, ways)
        assert merge_bits_round_robin(parts, 48) == value

    def test_split_rejects_overflow(self):
        with pytest.raises(ValueError):
            split_bits_round_robin(16, 4, 2)

    def test_split_parts_are_halves(self):
        parts = split_bits_round_robin(0b1111, 4, 2)
        assert parts == [0b11, 0b11]

    def test_single_way_is_identity(self):
        assert split_bits_round_robin(0xABC, 12, 1) == [0xABC]
