"""Integration tests: full-system runs across designs and workloads."""

import pytest

from repro.config import DesignPoint, table2_config
from repro.sim.stats import LatencyStats, RunResult, geometric_mean
from repro.sim.system import run_simulation
from repro.workloads.spec import SPEC_PROFILES, get_profile

TRACE = 2500  # short traces keep the integration suite quick


def quick_run(design, workload="mcf", channels=1, **kwargs):
    config = table2_config(design, channels=channels)
    return run_simulation(config, workload, trace_length=TRACE, **kwargs)


class TestRunSimulation:
    def test_nonsecure_baseline_runs(self):
        result = quick_run(DesignPoint.NONSECURE)
        assert result.execution_cycles > 0
        assert result.miss_count > 0
        assert result.design == "nonsecure"
        assert result.workload == "mcf"

    def test_oram_slowdown_direction(self):
        """The fundamental result: ORAM costs multiples, not percents."""
        nonsecure = quick_run(DesignPoint.NONSECURE)
        freecursive = quick_run(DesignPoint.FREECURSIVE)
        slowdown = freecursive.execution_cycles / nonsecure.execution_cycles
        assert slowdown > 3

    def test_sdimm_designs_beat_freecursive(self):
        freecursive = quick_run(DesignPoint.FREECURSIVE)
        for design in (DesignPoint.INDEP_2, DesignPoint.SPLIT_2):
            result = quick_run(design)
            assert result.execution_cycles < freecursive.execution_cycles, \
                design

    def test_accessorams_per_miss_reasonable(self):
        result = quick_run(DesignPoint.FREECURSIVE)
        assert 1.0 <= result.accessorams_per_miss < 4.0

    def test_plb_disabled_costs_more_accesses(self):
        with_plb = quick_run(DesignPoint.FREECURSIVE)
        config = table2_config(DesignPoint.FREECURSIVE)
        # full recursion: every miss pays the whole PosMap chain
        from repro.sim.system import build_backend
        assert with_plb.accessorams_per_miss < \
            config.oram.recursive_posmaps + 1

    def test_main_bus_quiet_for_independent(self):
        """INDEP's headline: the memory channel carries blocks, not paths."""
        freecursive = quick_run(DesignPoint.FREECURSIVE)
        independent = quick_run(DesignPoint.INDEP_2)
        fc_lines = sum(counters["reads"] + counters["writes"]
                       for counters in freecursive.channel_counters)
        assert independent.main_bus_lines < 0.2 * fc_lines

    def test_split_latency_below_freecursive(self):
        freecursive = quick_run(DesignPoint.FREECURSIVE)
        split = quick_run(DesignPoint.SPLIT_2)
        assert split.miss_latency.mean < freecursive.miss_latency.mean

    def test_oram_cache_toggle(self):
        cached = quick_run(DesignPoint.FREECURSIVE)
        uncached = run_simulation(
            table2_config(DesignPoint.FREECURSIVE, oram_cache_enabled=False),
            "mcf", trace_length=TRACE)
        assert uncached.execution_cycles > cached.execution_cycles

    def test_warmup_must_leave_window(self):
        config = table2_config(DesignPoint.NONSECURE)
        with pytest.raises(ValueError):
            run_simulation(config, "mcf", trace_length=100,
                           warmup_records=100)

    def test_profile_object_accepted(self):
        result = run_simulation(table2_config(DesignPoint.NONSECURE),
                                get_profile("gromacs"), trace_length=TRACE)
        assert result.workload == "gromacs"

    def test_unknown_workload_rejected(self):
        with pytest.raises(KeyError):
            quick_run(DesignPoint.NONSECURE, workload="doom")

    def test_deterministic(self):
        first = quick_run(DesignPoint.FREECURSIVE)
        second = quick_run(DesignPoint.FREECURSIVE)
        assert first.execution_cycles == second.execution_cycles

    def test_seed_changes_results(self):
        first = quick_run(DesignPoint.FREECURSIVE, trace_seed=1)
        second = quick_run(DesignPoint.FREECURSIVE, trace_seed=2)
        assert first.execution_cycles != second.execution_cycles

    def test_rank_residencies_populated(self):
        result = quick_run(DesignPoint.INDEP_2)
        assert result.rank_residencies
        # the low-power scheme parks ranks: power-down time must dominate
        power_down = sum(res.get("power-down", 0)
                         for res in result.rank_residencies)
        total = sum(sum(res.values()) for res in result.rank_residencies)
        assert power_down > 0.4 * total

    def test_all_ten_workloads_run_nonsecure(self):
        for name in SPEC_PROFILES:
            result = quick_run(DesignPoint.NONSECURE, workload=name)
            assert result.miss_count > 0, name


class TestStats:
    def test_latency_stats(self):
        stats = LatencyStats()
        for value in (10, 20, 30):
            stats.record(value)
        assert stats.mean == 20
        assert stats.maximum == 30
        assert stats.percentile(0.5) == 20

    def test_latency_percentile_empty(self):
        assert LatencyStats().percentile(0.9) == 0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([0.0, 1.0])

    def test_run_result_helpers(self):
        def make(cycles):
            return RunResult(
                design="x", workload="w", execution_cycles=cycles,
                miss_count=10, accessoram_count=14, llc_hit_rate=0.5,
                miss_latency=LatencyStats(), channel_counters=[],
                on_dimm_counters=[], main_bus_lines=0, probe_commands=0,
                drain_accesses=0)

        fast, slow = make(100), make(200)
        assert fast.speedup_over(slow) == 2.0
        assert fast.normalized_time(slow) == 0.5
        assert fast.accessorams_per_miss == pytest.approx(1.4)
