"""Tests for repro.faults.recovery: retries, backoff, link resilience."""

import pytest

from repro.core.commands import SdimmCommand
from repro.core.secure_buffer import LinkRecorder
from repro.faults.injector import FaultInjector
from repro.faults.plan import (FAULT_LINK_DELAY, FAULT_LINK_DROP,
                               FAULT_LINK_DUPLICATE, FaultPlan, FaultSpec)
from repro.faults.recovery import (ResilienceStats, ResilientLink,
                                   RetryExhaustedError, RetryPolicy,
                                   RetryingStore, SplitResilienceHandle)
from repro.obs.metrics import MetricsRegistry
from repro.oram.integrity import IntegrityError
from repro.utils.rng import DeterministicRng


def rng():
    return DeterministicRng(9, "faults/test")


class TestRetryPolicy:
    def test_backoff_grows_exponentially_to_the_cap(self):
        policy = RetryPolicy(backoff_base=2, backoff_factor=2,
                             backoff_cap=16, jitter=0)
        steps = [policy.backoff_steps(a, rng()) for a in (1, 2, 3, 4, 5)]
        assert steps == [2, 4, 8, 16, 16]

    def test_jitter_is_bounded_and_deterministic(self):
        policy = RetryPolicy(backoff_base=2, backoff_factor=2,
                             backoff_cap=16, jitter=3)
        first = [policy.backoff_steps(1, rng()) for _ in range(8)]
        second = [policy.backoff_steps(1, rng()) for _ in range(8)]
        assert first == second
        assert all(2 <= steps <= 4 for steps in first)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=0).backoff_steps(0, rng())

    def test_to_dict_round_trips_through_kwargs(self):
        policy = RetryPolicy(max_retries=5, jitter=0)
        assert RetryPolicy(**policy.to_dict()) == policy


class _FlakyStore:
    """Fails verification a fixed number of times, then succeeds."""

    def __init__(self, failures: int):
        self.failures = failures
        self.reads = 0
        self.written = {}
        self.extra = "delegated"

    def read(self, index):
        self.reads += 1
        if self.failures > 0:
            self.failures -= 1
            raise IntegrityError("flaky", index=index, kind="mac")
        return ("bucket", index)

    def write(self, index, bucket):
        self.written[index] = bucket


class TestRetryingStore:
    def wrap(self, failures, max_retries=3):
        stats = ResilienceStats()
        store = RetryingStore(_FlakyStore(failures), site=1,
                              policy=RetryPolicy(max_retries=max_retries,
                                                 jitter=0),
                              stats=stats, rng=rng())
        return store, stats

    def test_clean_read_counts_nothing(self):
        store, stats = self.wrap(failures=0)
        assert store.read(4) == ("bucket", 4)
        assert stats.detections == 0
        assert stats.retries == 0
        assert stats.recovered_reads == 0

    def test_transient_failures_recover(self):
        store, stats = self.wrap(failures=2)
        assert store.read(4) == ("bucket", 4)
        assert stats.detections == 2
        assert stats.retries == 2
        assert stats.recovered_reads == 1
        assert stats.backoff_steps == 2 + 4
        assert stats.exhausted == 0

    def test_exhaustion_raises_structured_error(self):
        store, stats = self.wrap(failures=99, max_retries=2)
        with pytest.raises(RetryExhaustedError) as excinfo:
            store.read(7)
        error = excinfo.value
        assert error.site == 1
        assert error.index == 7
        assert error.attempts == 2
        assert error.kind == "mac"
        assert stats.exhausted == 1
        assert stats.failures[0]["kind"] == "retry-exhausted"
        assert stats.failures[0]["index"] == 7

    def test_write_and_attributes_pass_through(self):
        store, _ = self.wrap(failures=0)
        store.write(2, "payload")
        assert store._inner.written[2] == "payload"
        assert store.extra == "delegated"


class TestSplitResilienceHandle:
    def make(self, max_retries=2, heal=None):
        stats = ResilienceStats()
        handle = SplitResilienceHandle(
            RetryPolicy(max_retries=max_retries, jitter=0), stats, rng(),
            site=3, heal=heal)
        return handle, stats

    def test_retries_below_budget(self):
        handle, stats = self.make()
        error = IntegrityError("bad", index=5, kind="mac")
        assert handle.on_integrity_failure("split", 5, error, attempt=1)
        assert handle.on_integrity_failure("split", 5, error, attempt=2)
        assert stats.detections == 2
        assert stats.retries == 2

    def test_heal_runs_on_every_failure(self):
        healed = []
        handle, _ = self.make(heal=healed.append)
        error = IntegrityError("bad", index=5, kind="mac")
        handle.on_integrity_failure("split", 5, error, attempt=1)
        with pytest.raises(RetryExhaustedError):
            handle.on_integrity_failure("split", 5, error, attempt=3)
        # the heal callback saw the exhausting failure too — that is how
        # the fault driver attributes detections for persistent faults
        assert healed == [5, 5]

    def test_exhaustion(self):
        handle, stats = self.make(max_retries=1)
        error = IntegrityError("bad", index=5, kind="mac")
        with pytest.raises(RetryExhaustedError) as excinfo:
            handle.on_integrity_failure("split", 5, error, attempt=2)
        assert excinfo.value.site == 3
        assert stats.exhausted == 1


def link_with_plan(*specs, seed=4):
    plan = FaultPlan(seed=seed, specs=tuple(sorted(specs)))
    injector = FaultInjector(plan)
    recorder = LinkRecorder(enabled=True)
    stats = ResilienceStats()
    link = ResilientLink(recorder, injector, stats,
                         RetryPolicy(jitter=0), rng())
    injector.begin_access(0)
    return link, recorder, stats, injector


def link_spec(kind, op_ordinal=0, delay_steps=0):
    return FaultSpec(access_index=0, kind=kind, op_ordinal=op_ordinal,
                     delay_steps=delay_steps)


class TestResilientLink:
    def test_clean_passthrough(self):
        link, recorder, stats, _ = link_with_plan()
        link.up(SdimmCommand.ACCESS, 0, 64)
        link.down(None, 1, 64)
        assert len(recorder) == 2
        assert stats.link_drops == 0

    def test_drop_retransmits_with_identical_shape(self):
        link, recorder, stats, _ = link_with_plan(
            link_spec(FAULT_LINK_DROP))
        link.up(SdimmCommand.ACCESS, 0, 64)
        shapes = recorder.shapes()
        assert len(shapes) == 2
        assert shapes[0] == shapes[1]
        assert stats.link_drops == 1
        assert stats.link_retransmissions == 1
        assert stats.retries == 1           # the timeout backed off

    def test_duplicate_delivers_twice(self):
        link, recorder, stats, _ = link_with_plan(
            link_spec(FAULT_LINK_DUPLICATE))
        link.down(None, 1, 64)
        assert len(recorder) == 2
        assert stats.link_duplicates == 1

    def test_delay_ticks_the_clock_not_the_wire(self):
        link, recorder, stats, _ = link_with_plan(
            link_spec(FAULT_LINK_DELAY, delay_steps=5))
        before = recorder.clock.now
        link.up(SdimmCommand.ACCESS, 0, 64)
        assert len(recorder) == 1           # exactly one event on the wire
        assert recorder.clock.now >= before + 5
        assert stats.link_delays == 1
        assert stats.link_delay_steps == 5

    def test_op_ordinal_targets_the_nth_message(self):
        link, recorder, _, _ = link_with_plan(
            link_spec(FAULT_LINK_DROP, op_ordinal=2))
        for _ in range(3):
            link.up(SdimmCommand.ACCESS, 0, 64)
        assert len(recorder) == 4           # third message retransmitted

    def test_summary_counts_applied_link_faults(self):
        link, _, _, injector = link_with_plan(link_spec(FAULT_LINK_DROP))
        link.up(SdimmCommand.ACCESS, 0, 64)
        injector.finalize()
        assert injector.summary()["link"]["applied"] == 1


class TestResilienceStats:
    def test_fold_into_exports_fault_counters(self):
        stats = ResilienceStats()
        stats.note_detection(0, 3, IntegrityError("x"))
        stats.note_retry(4)
        stats.note_recovered(1)
        stats.note_quarantine(2)
        stats.note_quarantine(2)            # idempotent per site
        metrics = MetricsRegistry()
        stats.fold_into(metrics)
        assert metrics.counter("faults/detections").value == 1
        assert metrics.counter("faults/retries").value == 1
        assert metrics.counter("faults/backoff_steps").value == 4
        assert metrics.counter("faults/quarantines").value == 1

    def test_terminal_records_are_flagged(self):
        stats = ResilienceStats()
        stats.note_terminal({"kind": "stash-overflow", "detail": "boom"})
        assert stats.as_dict()["failures"] == [
            {"kind": "stash-overflow", "detail": "boom", "terminal": True}]
