"""Tests for the discrete-event core and work queues."""

import pytest

from repro.sim.events import EventQueue, WorkQueue


class TestEventQueue:
    def test_runs_in_time_order(self):
        events = EventQueue()
        order = []
        events.at(30, lambda: order.append("c"))
        events.at(10, lambda: order.append("a"))
        events.at(20, lambda: order.append("b"))
        events.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_schedule_order(self):
        events = EventQueue()
        order = []
        events.at(10, lambda: order.append(1))
        events.at(10, lambda: order.append(2))
        events.run()
        assert order == [1, 2]

    def test_now_advances(self):
        events = EventQueue()
        seen = []
        events.at(15, lambda: seen.append(events.now))
        events.at(40, lambda: seen.append(events.now))
        final = events.run()
        assert seen == [15, 40]
        assert final == 40

    def test_past_events_clamp_to_now(self):
        events = EventQueue()
        seen = []

        def schedule_in_past():
            events.at(5, lambda: seen.append(events.now))

        events.at(100, schedule_in_past)
        events.run()
        assert seen == [100]

    def test_callbacks_can_schedule_more(self):
        events = EventQueue()
        seen = []

        def chain(depth):
            seen.append(events.now)
            if depth:
                events.at(events.now + 10, lambda: chain(depth - 1))

        events.at(0, lambda: chain(3))
        assert events.run() == 30
        assert seen == [0, 10, 20, 30]

    def test_empty_run(self):
        assert EventQueue().run() == 0


class TestWorkQueue:
    def test_jobs_run_serially(self):
        events = EventQueue()
        queue = WorkQueue(events)
        spans = []

        def job(start, duration):
            spans.append((start, start + duration))
            return start + duration

        queue.enqueue(0, lambda s: job(s, 100))
        queue.enqueue(0, lambda s: job(s, 50))
        events.run()
        assert spans == [(0, 100), (100, 150)]

    def test_future_arrival_waits(self):
        events = EventQueue()
        queue = WorkQueue(events)
        starts = []
        queue.enqueue(500, lambda s: (starts.append(s), s + 10)[1])
        events.run()
        assert starts == [500]

    def test_idle_gap_absorbed_by_later_job(self):
        """A job arriving during another's wait must still run in order —
        FIFO discipline mirrors the SDIMM message queue."""
        events = EventQueue()
        queue = WorkQueue(events)
        starts = []
        queue.enqueue(500, lambda s: (starts.append(("a", s)), s + 10)[1])
        queue.enqueue(100, lambda s: (starts.append(("b", s)), s + 10)[1])
        events.run()
        assert starts[0][0] == "a"

    def test_done_callback_gets_finish_time(self):
        events = EventQueue()
        queue = WorkQueue(events)
        finishes = []
        queue.enqueue(0, lambda s: s + 77, finishes.append)
        events.run()
        assert finishes == [77]

    def test_completion_chains_new_work(self):
        """Typical backend pattern: op completion enqueues the next op."""
        events = EventQueue()
        queue = WorkQueue(events)
        finishes = []

        def chain(finish):
            finishes.append(finish)
            if len(finishes) < 3:
                queue.enqueue(finish, lambda s: s + 100, chain)

        queue.enqueue(0, lambda s: s + 100, chain)
        events.run()
        assert finishes == [100, 200, 300]

    def test_two_queues_overlap(self):
        """Independent resources genuinely run in parallel."""
        events = EventQueue()
        first = WorkQueue(events, "a")
        second = WorkQueue(events, "b")
        spans = []
        for queue in (first, second):
            queue.enqueue(0, lambda s, q=queue: (spans.append((q.name, s)),
                                                 s + 100)[1])
        events.run()
        assert [start for _, start in spans] == [0, 0]

    def test_jobs_started_counter(self):
        events = EventQueue()
        queue = WorkQueue(events)
        for _ in range(5):
            queue.enqueue(0, lambda s: s + 1)
        events.run()
        assert queue.jobs_started == 5
