"""Sharding primitives: spec validation, the ring, workers, migration."""

import pytest

from repro.serve.shard import (ShardPlan, ShardSpec, build_plan,
                               model_migrations, route_requests, run_shard)

SMALL = dict(levels=6, requests=96, capacity=16, batch=4, rate=0.02,
             seed=2018)


class TestShardSpec:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ShardSpec(shards=3, **SMALL)
        with pytest.raises(ValueError):
            ShardSpec(shards=2, subtrees=6, **SMALL)
        with pytest.raises(ValueError):
            ShardSpec(shards=4, subtrees=2, **SMALL)
        with pytest.raises(ValueError):
            # levels=6 -> 32 leaves; 64 subtrees cannot fit
            ShardSpec(shards=2, subtrees=64, **SMALL)
        with pytest.raises(ValueError):
            ShardSpec(virtual_nodes=0, **SMALL)
        with pytest.raises(ValueError):
            ShardSpec(migration_capacity=0, **SMALL)
        with pytest.raises(ValueError):
            ShardSpec(migration_drain=1.5, **SMALL)
        with pytest.raises(ValueError):
            ShardSpec(quarantined=(9,), shards=2, **SMALL)

    def test_shared_serving_validation_is_delegated(self):
        with pytest.raises(ValueError):
            ShardSpec(design="mystery", **SMALL)
        with pytest.raises(ValueError):
            ShardSpec(capacity=0, levels=6, rate=0.02)

    def test_quarantine_needs_a_quarantinable_design(self):
        ShardSpec(design="independent", quarantined=(0,), **SMALL)
        ShardSpec(design="indep-split", quarantined=(0,), **SMALL)
        with pytest.raises(ValueError):
            ShardSpec(design="split", quarantined=(0,), **SMALL)

    def test_quarantined_is_canonicalized(self):
        spec = ShardSpec(quarantined=(1, 0, 1), **SMALL)
        assert spec.quarantined == (0, 1)

    def test_round_trips_through_dict(self):
        spec = ShardSpec(shards=4, subtrees=16, quarantined=(2,), **SMALL)
        assert ShardSpec.from_dict(spec.to_dict()) == spec

    def test_dict_payload_is_json_ready(self):
        import json

        payload = ShardSpec(quarantined=(1,), **SMALL).to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestShardPlan:
    def test_plan_is_a_pure_function_of_the_spec(self):
        spec = ShardSpec(shards=4, subtrees=16, **SMALL)
        assert build_plan(spec).assignments() == \
            build_plan(spec).assignments()

    def test_every_subtree_is_assigned_in_range(self):
        plan = ShardPlan(shards=4, subtrees=32, levels=9, virtual_nodes=8)
        assignments = plan.assignments()
        assert len(assignments) == 32
        assert set(assignments.values()) <= set(range(4))
        # virtual nodes spread load: no shard owns everything
        assert len(set(assignments.values())) > 1

    def test_subtree_of_is_the_leaf_msb_split(self):
        # levels=6 -> 32 leaves; 8 subtrees -> top 3 bits, shift 2
        plan = ShardPlan(shards=2, subtrees=8, levels=6, virtual_nodes=4)
        assert plan.subtree_of(0) == 0
        assert plan.subtree_of(3) == 0
        assert plan.subtree_of(4) == 1
        assert plan.subtree_of(31) == 7

    def test_growing_the_ring_moves_only_rehashed_subtrees(self):
        """Consistent hashing: 2 -> 4 shards must keep most assignments."""
        small = ShardPlan(shards=2, subtrees=64, levels=9, virtual_nodes=8)
        large = ShardPlan(shards=4, subtrees=64, levels=9, virtual_nodes=8)
        kept = sum(
            1 for subtree in range(64)
            if small.shard_of_subtree(subtree) ==
            large.shard_of_subtree(subtree))
        # subtrees staying on shards 0/1 never move under consistent
        # hashing; naive modulo rehashing would keep only ~half
        assert kept >= 64 // 4
        moved_to_new = sum(
            1 for subtree in range(64)
            if large.shard_of_subtree(subtree) >= 2)
        assert moved_to_new > 0

    def test_shares_sum_to_one(self):
        plan = ShardPlan(shards=4, subtrees=16, levels=9, virtual_nodes=8)
        assert sum(plan.shares()) == pytest.approx(1.0)


class TestRouting:
    def test_routing_covers_the_whole_timeline(self):
        spec = ShardSpec(shards=4, subtrees=16, **SMALL)
        routed = route_requests(spec)
        assert len(routed) == spec.requests
        assert all(0 <= shard < spec.shards for shard, _ in routed)
        plan = build_plan(spec)
        assert all(plan.shard_of_address(request.address) == shard
                   for shard, request in routed)

    def test_shard_slices_partition_the_timeline(self):
        spec = ShardSpec(shards=4, subtrees=16, **SMALL)
        routed = route_requests(spec)
        per_shard = [[r for owner, r in routed if owner == shard]
                     for shard in range(spec.shards)]
        assert sum(len(slice_) for slice_ in per_shard) == len(routed)


class TestRunShard:
    def test_worker_is_deterministic(self):
        spec = ShardSpec(shards=2, subtrees=8, **SMALL)
        assert run_shard(spec, 0) == run_shard(spec, 0)

    def test_out_of_range_shard_rejected(self):
        spec = ShardSpec(shards=2, subtrees=8, **SMALL)
        with pytest.raises(ValueError):
            run_shard(spec, 2)

    def test_reports_carry_the_shard_identity(self):
        spec = ShardSpec(shards=2, subtrees=8, **SMALL)
        payload = run_shard(spec, 1)
        assert payload["report"]["spec"]["shard"] == 1
        assert payload["metrics"]["gauges"]["shard/id"]["last"] == 1

    def test_quarantined_shard_degrades_every_access(self):
        spec = ShardSpec(shards=2, subtrees=8, quarantined=(1,), **SMALL)
        healthy = run_shard(spec, 0)
        degraded = run_shard(spec, 1)
        assert healthy["report"]["degraded"]["quarantined"] is False
        assert healthy["report"]["degraded"]["degraded_accesses"] == 0
        assert degraded["report"]["degraded"]["quarantined"] is True
        assert degraded["report"]["degraded"]["degraded_accesses"] == \
            degraded["report"]["totals"]["accesses"] > 0
        # degraded service still completes and respects the queue bound
        assert degraded["report"]["totals"]["completed"] == \
            degraded["report"]["totals"]["admitted"]
        assert degraded["report"]["queue"]["depth_bounded"] is True

    def test_quarantine_leaves_the_link_shape_alone(self):
        """Degraded accesses must be link-indistinguishable: same total
        per-access traffic as the healthy run of the same slice."""
        base = dict(SMALL)
        healthy_spec = ShardSpec(shards=2, subtrees=8, **base)
        sick_spec = ShardSpec(shards=2, subtrees=8, quarantined=(0,),
                              **base)
        healthy = run_shard(healthy_spec, 0)["report"]
        sick = run_shard(sick_spec, 0)["report"]
        assert healthy["totals"]["accesses"] == sick["totals"]["accesses"]
        assert healthy["service"]["busy_ticks"] == \
            sick["service"]["busy_ticks"]


class TestMigrationModel:
    def spec(self, **overrides):
        merged = dict(SMALL, shards=4, subtrees=16)
        merged.update(overrides)
        return ShardSpec(**merged)

    def test_migration_fraction_tracks_expectation(self):
        spec = self.spec(requests=400)
        plan = build_plan(spec)
        stats = model_migrations(spec, plan, route_requests(spec, plan))
        assert stats["accesses"] == 400
        assert 0.0 < stats["migration_fraction"] <= 1.0
        assert stats["migration_fraction"] == pytest.approx(
            stats["expected_migration_fraction"], abs=0.1)

    def test_single_shard_never_migrates(self):
        spec = self.spec(shards=1, subtrees=1)
        plan = build_plan(spec)
        stats = model_migrations(spec, plan, route_requests(spec, plan))
        assert stats["migrations"] == 0
        assert stats["overflows"] == 0

    def test_tiny_undrained_queue_overflows_and_is_counted(self):
        spec = self.spec(requests=400, migration_capacity=1,
                         migration_drain=0.0)
        plan = build_plan(spec)
        stats = model_migrations(spec, plan, route_requests(spec, plan))
        assert stats["overflows"] > 0
        assert stats["overflow_rate"] > 0.0
        per_shard = stats["per_shard"]
        assert sum(entry["overflows"] for entry in per_shard.values()) == \
            stats["overflows"]

    def test_analytic_cross_checks_are_present(self):
        from repro.analysis.queueing import \
            transfer_queue_overflow_probability

        spec = self.spec()
        plan = build_plan(spec)
        stats = model_migrations(spec, plan, route_requests(spec, plan))
        model = stats["model"]
        assert model["mm1k_overflow_probability"] == pytest.approx(
            transfer_queue_overflow_probability(spec.migration_drain,
                                                spec.migration_capacity))
        assert 0.0 <= model["undrained_first_passage"] <= 1.0
