"""Tests for the ASCII figure renderers."""

import pytest

from repro.report import bar_chart, grouped_bar_chart, line_chart


class TestBarChart:
    def test_renders_all_rows(self):
        chart = bar_chart("Figure X", [("freecursive", 1.0),
                                       ("indep-2", 0.66)])
        assert "Figure X" in chart
        assert "freecursive" in chart
        assert "indep-2" in chart

    def test_bars_scale_with_values(self):
        chart = bar_chart("t", [("big", 1.0), ("small", 0.5)], width=40)
        lines = chart.splitlines()
        big = lines[1].count("#")
        small = lines[2].count("#")
        assert big == 2 * small

    def test_reference_marker(self):
        chart = bar_chart("t", [("x", 0.5)], reference=1.0)
        assert "|" in chart

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            bar_chart("t", [])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            bar_chart("t", [("x", -1.0)])

    def test_all_zero_safe(self):
        chart = bar_chart("t", [("x", 0.0)])
        assert "x" in chart


class TestGroupedBarChart:
    def test_groups_and_series(self):
        chart = grouped_bar_chart(
            "Figure 9", ["mcf", "lbm"],
            {"indep-4": [0.8, 0.9], "split-4": [0.85, 0.95]})
        assert chart.count("mcf") == 1
        assert chart.count("indep-4") == 2

    def test_rejects_ragged_series(self):
        with pytest.raises(ValueError):
            grouped_bar_chart("t", ["a", "b"], {"s": [1.0]})


class TestLineChart:
    def test_renders_axes_and_legend(self):
        chart = line_chart("Figure 13a", {
            "64": [(0, 0.0), (400_000, 0.8), (800_000, 0.92)],
            "1024": [(0, 0.0), (400_000, 0.01), (800_000, 0.1)],
        })
        assert "Figure 13a" in chart
        assert "a=1024" in chart or "a=64" in chart
        assert "+" in chart

    def test_high_points_render_high(self):
        chart = line_chart("t", {"s": [(0, 0.0), (10, 1.0)]}, width=20,
                           height=6)
        lines = chart.splitlines()
        top_row = lines[1]
        bottom_row = lines[6]
        assert "a" in top_row      # y=1 at the top
        assert "a" in bottom_row   # y=0 at the bottom

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            line_chart("t", {})
