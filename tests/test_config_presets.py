"""Tests for extended configuration presets (DDR4) and design helpers."""

import dataclasses

import pytest

from repro.config import (
    DOUBLE_CHANNEL_DESIGNS,
    SINGLE_CHANNEL_DESIGNS,
    DesignPoint,
    DramOrganization,
    ddr4_timing,
    table2_config,
)
from repro.dram.address import DecodedAddress
from repro.dram.channel import Channel
from repro.sim.system import run_simulation


class TestDdr4Preset:
    def test_validates(self):
        ddr4_timing().validate()

    def test_faster_clock_than_ddr3(self):
        from repro.config import DramTiming
        assert ddr4_timing().tck_ns < DramTiming().tck_ns

    def test_longer_refresh_stall(self):
        from repro.config import DramTiming
        assert ddr4_timing().trfc > DramTiming().trfc

    def test_channel_schedules_with_ddr4(self):
        channel = Channel(ddr4_timing(), DramOrganization(), scale=1)
        timing = channel.schedule_access(DecodedAddress(0, 0, 0, 0),
                                         False, 0)
        assert timing.data_start == ddr4_timing().trcd + ddr4_timing().tcl

    def test_full_system_runs_on_ddr4(self):
        config = table2_config(DesignPoint.FREECURSIVE, channels=1)
        config = dataclasses.replace(config, timing=ddr4_timing())
        config.validate()
        result = run_simulation(config, "gromacs", trace_length=1200)
        assert result.execution_cycles > 0

    def test_ddr4_higher_bandwidth_helps_oram(self):
        """Same memory-clock parameters but a faster clock: at equal
        CPU-cycle scale the DDR4 sim moves the same bursts, so this checks
        the *relative* sanity: DDR4's deeper timings cost more cycles per
        isolated access."""
        ddr3 = Channel(
            __import__("repro.config", fromlist=["DramTiming"]).DramTiming(),
            DramOrganization(), scale=1)
        ddr4 = Channel(ddr4_timing(), DramOrganization(), scale=1)
        t3 = ddr3.schedule_access(DecodedAddress(0, 0, 0, 0), False, 0)
        t4 = ddr4.schedule_access(DecodedAddress(0, 0, 0, 0), False, 0)
        assert t4.data_start > t3.data_start  # more cycles...
        # ...but fewer nanoseconds per cycle
        assert ddr4_timing().tck_ns * t4.data_start < \
            1.25 * 1.1 * t3.data_start


class TestDesignGroups:
    def test_single_channel_designs(self):
        assert DesignPoint.INDEP_2 in SINGLE_CHANNEL_DESIGNS
        assert DesignPoint.SPLIT_2 in SINGLE_CHANNEL_DESIGNS

    def test_double_channel_designs(self):
        assert DesignPoint.INDEP_SPLIT in DOUBLE_CHANNEL_DESIGNS
        assert len(DOUBLE_CHANNEL_DESIGNS) == 3

    def test_groups_disjoint(self):
        assert not set(SINGLE_CHANNEL_DESIGNS) & set(DOUBLE_CHANNEL_DESIGNS)
