"""Differential tests: optimized hot-path cores vs their references.

The optimized ``Channel.schedule_run``, ``Rank.note_active`` and the
tuple-based event scheduler must be *bit-identical* in behaviour to the
straightforward reference implementations they replaced
(``REPRO_REFERENCE_CORE=1`` selects the references at import time; see
``repro.utils.memo``).  These tests drive both sides with the same
randomized command streams and compare every observable — returned
timings, counters, bus state, power-state residency — which is a much
tighter net than the end-to-end golden masters alone.
"""

import os
import subprocess
import sys

import pytest

from repro.config import DramOrganization, DramTiming
from repro.dram.address import DecodedAddress
from repro.dram.bank import ScaledTiming
from repro.dram.channel import Channel
from repro.dram.commands import PowerState
from repro.dram.rank import Rank
from repro.utils.rng import DeterministicRng

TIMING = DramTiming()
ORGANIZATION = DramOrganization()

SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                   "src")


def random_runs(seed: int, count: int):
    """A reproducible stream of valid schedule_run argument tuples."""
    rng = DeterministicRng(seed, "refcore-test")
    columns = ORGANIZATION.row_bytes // 64
    ranks = ORGANIZATION.dimms_per_channel * ORGANIZATION.ranks_per_dimm
    now = 0
    for _ in range(count):
        run_len = rng.randint(1, 16)
        address = DecodedAddress(
            rank=rng.randint(0, ranks - 1),
            bank=rng.randint(0, ORGANIZATION.banks_per_rank - 1),
            row=rng.randint(0, 511),
            column=rng.randint(0, columns - run_len))
        now += rng.randint(0, 200)
        yield address, run_len, rng.random() < 0.5, now


class TestScheduleRunDifferential:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    @pytest.mark.parametrize("refresh", [False, True])
    def test_matches_reference_on_random_streams(self, seed, refresh):
        optimized = Channel(TIMING, ORGANIZATION, scale=2,
                            refresh_enabled=refresh)
        reference = Channel(TIMING, ORGANIZATION, scale=2,
                            refresh_enabled=refresh)
        for address, count, is_write, earliest in random_runs(seed, 600):
            fast = optimized.schedule_run(address, count, is_write, earliest)
            slow = reference._schedule_run_reference(address, count,
                                                     is_write, earliest)
            assert fast == slow
        assert optimized.counters.as_dict() == reference.counters.as_dict()
        assert optimized.bus_free_at == reference.bus_free_at

    def test_matches_reference_after_power_down(self):
        optimized = Channel(TIMING, ORGANIZATION, scale=2)
        reference = Channel(TIMING, ORGANIZATION, scale=2)
        for channel in (optimized, reference):
            for rank in channel.ranks:
                rank.enter_power_down(0)
        for address, count, is_write, earliest in random_runs(7, 200):
            fast = optimized.schedule_run(address, count, is_write, earliest)
            slow = reference._schedule_run_reference(address, count,
                                                     is_write, earliest)
            assert fast == slow
        residency = [rank.state_residency for rank in optimized.ranks]
        assert residency == [rank.state_residency
                             for rank in reference.ranks]

    def test_rejects_bad_runs_like_reference(self):
        channel = Channel(TIMING, ORGANIZATION, scale=2)
        address = DecodedAddress(rank=0, bank=0, row=0, column=0)
        with pytest.raises(ValueError):
            channel.schedule_run(address, 0, False, 0)
        with pytest.raises(ValueError):
            channel._schedule_run_reference(address, 0, False, 0)
        columns = ORGANIZATION.row_bytes // 64
        edge = DecodedAddress(rank=0, bank=0, row=0, column=columns - 1)
        with pytest.raises(ValueError):
            channel.schedule_run(edge, 2, False, 0)
        with pytest.raises(ValueError):
            channel._schedule_run_reference(edge, 2, False, 0)


class TestNoteActiveDifferential:
    def make_rank(self):
        return Rank(ScaledTiming(TIMING, 2), ORGANIZATION.banks_per_rank)

    def test_open_row_transitions_match(self):
        fast, slow = self.make_rank(), self.make_rank()
        for rank in (fast, slow):
            rank.banks[0].activate(10, 3)
        fast.note_active(50)
        slow.note_activity(50)
        assert fast.power_state == slow.power_state
        assert fast.state_residency == slow.state_residency

    def test_parked_rank_left_alone(self):
        fast, slow = self.make_rank(), self.make_rank()
        for rank in (fast, slow):
            rank.enter_power_down(5)
        fast.note_active(50)
        slow.note_activity(50)
        assert fast.power_state is PowerState.POWER_DOWN
        assert fast.power_state == slow.power_state
        assert fast.state_residency == slow.state_residency

    def test_repeated_calls_are_idempotent(self):
        fast, slow = self.make_rank(), self.make_rank()
        for rank in (fast, slow):
            rank.banks[2].activate(0, 1)
        for now in (10, 20, 30):
            fast.note_active(now)
            slow.note_activity(now)
        assert fast.power_state == slow.power_state
        assert fast.state_residency == slow.state_residency


class TestReferenceCoreEndToEnd:
    """REPRO_REFERENCE_CORE=1 (fresh interpreter) is cycle-identical."""

    def run_cycles(self, env_extra):
        code = (
            "from repro.config import small_config, DesignPoint\n"
            "from repro.sim.system import run_simulation\n"
            "r = run_simulation(small_config(DesignPoint.FREECURSIVE),\n"
            "                   'mcf', trace_length=300)\n"
            "print(r.execution_cycles)\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env.update(env_extra)
        output = subprocess.run([sys.executable, "-c", code], env=env,
                                capture_output=True, text=True, check=True)
        return int(output.stdout)

    def test_reference_env_matches_optimized(self):
        optimized = self.run_cycles({})
        reference = self.run_cycles({"REPRO_REFERENCE_CORE": "1",
                                     "REPRO_DISABLE_MEMO": "1"})
        assert optimized == reference
