"""Documentation-consistency guards: docs must track the code.

These tests fail when a module, bench, or example referenced by the
documentation goes missing (or vice versa), so the docs cannot silently
rot as the code evolves.
"""

import os
import re

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def read(path):
    with open(os.path.join(ROOT, path)) as handle:
        return handle.read()


class TestDesignInventory:
    def test_every_inventoried_module_exists(self):
        design = read("DESIGN.md")
        existing = set()
        for directory, _, files in os.walk(os.path.join(ROOT, "src",
                                                        "repro")):
            existing.update(name for name in files
                            if name.endswith(".py"))
        for match in re.finditer(r"^\s{2,}(\w+\.py)", design,
                                 re.MULTILINE):
            name = match.group(1)
            assert name in existing, f"DESIGN.md lists missing {name}"

    def test_every_source_module_inventoried(self):
        design = read("DESIGN.md")
        for directory, _, files in os.walk(os.path.join(ROOT, "src",
                                                        "repro")):
            for name in files:
                if not name.endswith(".py") or name == "__init__.py":
                    continue
                if name == "__main__.py":
                    continue
                assert name in design, \
                    f"{name} missing from DESIGN.md inventory"

    def test_bench_targets_exist(self):
        design = read("DESIGN.md")
        for match in re.finditer(r"benchmarks/(bench_\w+\.py)", design):
            path = os.path.join(ROOT, "benchmarks", match.group(1))
            assert os.path.exists(path), \
                f"DESIGN.md references missing {match.group(1)}"


class TestReadme:
    def test_bench_table_entries_exist(self):
        readme = read("README.md")
        for match in re.finditer(r"`(bench_\w+\.py)`", readme):
            path = os.path.join(ROOT, "benchmarks", match.group(1))
            assert os.path.exists(path), \
                f"README references missing {match.group(1)}"

    def test_example_table_entries_exist(self):
        readme = read("README.md")
        for match in re.finditer(r"`(\w+\.py)` \|", readme):
            name = match.group(1)
            if name.startswith("bench_"):
                continue
            path = os.path.join(ROOT, "examples", name)
            assert os.path.exists(path), \
                f"README references missing example {name}"

    def test_every_example_documented(self):
        readme = read("README.md")
        for name in os.listdir(os.path.join(ROOT, "examples")):
            if name.endswith(".py"):
                assert name in readme, f"example {name} not in README"

    def test_every_bench_documented(self):
        readme = read("README.md")
        design = read("DESIGN.md")
        experiments = read("EXPERIMENTS.md")
        corpus = readme + design + experiments
        for name in os.listdir(os.path.join(ROOT, "benchmarks")):
            if name.startswith("bench_") and name.endswith(".py"):
                assert name in corpus, f"bench {name} not documented"


class TestExperiments:
    def test_mentions_every_figure(self):
        experiments = read("EXPERIMENTS.md")
        for figure in ("Fig 6", "Fig 8", "Fig 9", "Fig 10", "Fig 11",
                       "Fig 13a", "Fig 13b", "Table I"):
            assert figure in experiments, f"{figure} missing"

    def test_api_doc_symbols_importable(self):
        """Every backticked dotted name in docs/api.md must import."""
        import importlib

        api = read(os.path.join("docs", "api.md"))
        for match in re.finditer(r"`(repro(?:\.\w+)+)`", api):
            module = match.group(1)
            importlib.import_module(module)
