"""Integration: every example script must run clean end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True, text=True, timeout=timeout)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "plaintext visible in DRAM? False" in result.stdout
        assert "distributed across subtrees" in result.stdout

    def test_adversary_view(self):
        result = run_example("adversary_view.py")
        assert result.returncode == 0, result.stderr
        assert "replay detected" in result.stdout
        assert "traces identical" in result.stdout
        assert "UNDETECTED" not in result.stdout

    def test_secure_key_value_store(self):
        result = run_example("secure_key_value_store.py")
        assert result.returncode == 0, result.stderr
        assert "indistinguishable" in result.stdout
        assert "Access pattern leaked: nothing." in result.stdout

    def test_transfer_queue_sizing(self):
        result = run_example("transfer_queue_sizing.py")
        assert result.returncode == 0, result.stderr
        assert "Act 1" in result.stdout
        assert "zero overflows" in result.stdout

    def test_design_space_comparison(self):
        result = run_example("design_space_comparison.py", "gromacs",
                             "1200")
        assert result.returncode == 0, result.stderr
        assert "indep-split" in result.stdout
        assert "1-channel" in result.stdout
        assert "2-channel" in result.stdout

    def test_paper_walkthrough(self):
        result = run_example("paper_walkthrough.py", "800")
        assert result.returncode == 0, result.stderr
        assert "Figure 6" in result.stdout
        assert "Figure 13" in result.stdout
        assert "mm^2" in result.stdout
