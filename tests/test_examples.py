"""Integration: every example script must run clean end to end."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                            "examples")


def run_example(name, *args, timeout=600):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name), *args],
        capture_output=True, text=True, timeout=timeout)


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "plaintext visible in DRAM? False" in result.stdout
        assert "distributed across subtrees" in result.stdout

    def test_adversary_view(self):
        result = run_example("adversary_view.py")
        assert result.returncode == 0, result.stderr
        assert "replay detected" in result.stdout
        assert "traces identical" in result.stdout
        assert "UNDETECTED" not in result.stdout

    def test_secure_key_value_store(self):
        result = run_example("secure_key_value_store.py")
        assert result.returncode == 0, result.stderr
        assert "indistinguishable" in result.stdout
        assert "Access pattern leaked: nothing." in result.stdout

    def test_transfer_queue_sizing(self):
        result = run_example("transfer_queue_sizing.py")
        assert result.returncode == 0, result.stderr
        assert "Act 1" in result.stdout
        assert "zero overflows" in result.stdout

    def test_design_space_comparison(self):
        result = run_example("design_space_comparison.py", "gromacs",
                             "1200")
        assert result.returncode == 0, result.stderr
        assert "indep-split" in result.stdout
        assert "1-channel" in result.stdout
        assert "2-channel" in result.stdout

    def test_paper_walkthrough(self):
        result = run_example("paper_walkthrough.py", "800")
        assert result.returncode == 0, result.stderr
        assert "Figure 6" in result.stdout
        assert "Figure 13" in result.stdout
        assert "mm^2" in result.stdout


def _load_kv_module():
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "secure_key_value_store",
        os.path.join(EXAMPLES_DIR, "secure_key_value_store.py"))
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _colliding_keys(kv_module, capacity):
    """Two distinct keys hashing to the same slot (deterministic scan)."""
    store = kv_module.ObliviousKvStore(capacity_blocks=capacity)
    seen = {}
    for index in range(10 * capacity):
        key = f"key-{index}"
        slot = store._slot(key)
        if slot in seen:
            return seen[slot], key
        seen[slot] = key
    raise AssertionError("no collision found — scan bound too small")


class TestKvStoreCollisions:
    """Regression: two keys in the same slot must never swap records.

    The old code stored no key identity in the block, so a colliding
    ``put`` silently overwrote the other key's record and ``get``
    returned the wrong data with no error.  Both tests fail on that code.
    """

    CAPACITY = 64

    def test_colliding_get_raises_instead_of_wrong_record(self):
        kv = _load_kv_module()
        first, second = _colliding_keys(kv, self.CAPACITY)
        store = kv.ObliviousKvStore(capacity_blocks=self.CAPACITY)
        store.put(first, "record-of-first")
        with pytest.raises(kv.KeyCollisionError) as excinfo:
            store.get(second)
        assert excinfo.value.key == second

    def test_colliding_put_raises_instead_of_silent_overwrite(self):
        kv = _load_kv_module()
        first, second = _colliding_keys(kv, self.CAPACITY)
        store = kv.ObliviousKvStore(capacity_blocks=self.CAPACITY)
        store.put(first, "record-of-first")
        with pytest.raises(kv.KeyCollisionError):
            store.put(second, "record-of-second")

    def test_non_colliding_operations_still_work(self):
        kv = _load_kv_module()
        store = kv.ObliviousKvStore(capacity_blocks=self.CAPACITY)
        store.put("alpha", "value-alpha")
        store.put("beta", "value-beta")
        assert store.get("alpha") == "value-alpha"
        assert store.get("beta") == "value-beta"
        store.put("alpha", "value-alpha-2")
        assert store.get("alpha") == "value-alpha-2"

    def test_missing_key_raises_key_error(self):
        kv = _load_kv_module()
        store = kv.ObliviousKvStore(capacity_blocks=self.CAPACITY)
        with pytest.raises(KeyError):
            store.get("never-written")
