"""Equivalence tests: coalesced path runs must cover exactly path lines.

The timing tier's speed rests on `path_runs`; these properties pin it to
the reference `path_lines` enumeration so the optimization can never
drift from the layout it accelerates.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import DramOrganization, OramConfig
from repro.oram.layout import LowPowerLayout, TreeLayout
from repro.oram.tree import TreeGeometry


def expand_runs_tree(layout, leaf, skip):
    lines = []
    for channel, address, count in layout.path_runs(leaf, skip):
        for offset in range(count):
            lines.append((channel, address.rank, address.bank, address.row,
                          address.column + offset))
    return sorted(lines)


def expand_lines_tree(layout, leaf, skip):
    return sorted((channel, address.rank, address.bank, address.row,
                   address.column)
                  for channel, address in layout.path_lines(leaf, skip))


class TestTreeLayoutEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(5, 12), st.integers(1, 2), st.integers(0, 4),
           st.data())
    def test_runs_cover_lines_exactly(self, levels, channels, skip, data):
        geometry = TreeGeometry(levels)
        layout = TreeLayout(geometry, OramConfig(levels=levels,
                                                 cached_levels=1),
                            DramOrganization(), channels)
        leaf = data.draw(st.integers(0, geometry.leaf_count - 1))
        skip = min(skip, levels - 1)
        assert expand_runs_tree(layout, leaf, skip) == \
            expand_lines_tree(layout, leaf, skip)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(5, 10), st.data())
    def test_total_line_count(self, levels, data):
        geometry = TreeGeometry(levels)
        oram = OramConfig(levels=levels, cached_levels=1)
        layout = TreeLayout(geometry, oram, DramOrganization(), 2)
        leaf = data.draw(st.integers(0, geometry.leaf_count - 1))
        runs = layout.path_runs(leaf, 0)
        assert sum(count for _, _, count in runs) == \
            levels * oram.lines_per_bucket

    def test_runs_never_cross_rows(self):
        geometry = TreeGeometry(12)
        layout = TreeLayout(geometry, OramConfig(levels=12,
                                                 cached_levels=1),
                            DramOrganization(), 1)
        columns = DramOrganization().row_bytes // 64
        for leaf in (0, 1000, geometry.leaf_count - 1):
            for _, address, count in layout.path_runs(leaf, 0):
                assert address.column + count <= columns


class TestLowPowerLayoutEquivalence:
    def make(self, levels=10):
        geometry = TreeGeometry(levels)
        return LowPowerLayout(geometry, OramConfig(levels=levels,
                                                   cached_levels=1),
                              DramOrganization(), ranks=4)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(6, 12), st.integers(0, 4), st.data())
    def test_runs_cover_lines_exactly(self, levels, skip, data):
        geometry = TreeGeometry(levels)
        layout = LowPowerLayout(geometry, OramConfig(levels=levels,
                                                     cached_levels=1),
                                DramOrganization(), ranks=4)
        leaf = data.draw(st.integers(0, geometry.leaf_count - 1))
        skip = min(skip, levels - 1)
        from_runs = sorted(
            (address.rank, address.bank, address.row,
             address.column + offset)
            for address, count in layout.path_runs(leaf, skip)
            for offset in range(count))
        from_lines = sorted((address.rank, address.bank, address.row,
                             address.column)
                            for address in layout.path_lines(leaf, skip))
        assert from_runs == from_lines

    @settings(max_examples=20, deadline=None)
    @given(st.data())
    def test_runs_stay_in_owner_rank(self, data):
        layout = self.make()
        leaf = data.draw(st.integers(0, layout.geometry.leaf_count - 1))
        rank = layout.rank_of_leaf(leaf)
        for address, _ in layout.path_runs(leaf, 0):
            assert address.rank == rank

    def test_skip_beyond_sram_levels(self):
        """Skipping more levels than the SRAM holds must subtract from the
        DRAM-resident part only."""
        layout = self.make(levels=10)
        full = sum(count for _, count in layout.path_runs(0, 0))
        skipped = sum(count for _, count in layout.path_runs(0, 4))
        # levels 0-1 are SRAM (free); skip=4 removes levels 0-3, i.e. two
        # DRAM-resident buckets fewer than the full path
        assert full - skipped == 2 * 5
