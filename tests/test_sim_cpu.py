"""Unit tests for the event-driven trace CPU driver."""

from typing import List

import pytest

from repro.config import DesignPoint, table2_config
from repro.sim.backends import BackendCounters
from repro.sim.cpu import SimulationDriver
from repro.sim.events import EventQueue
from repro.workloads.trace import TraceRecord


class InstantBackend:
    """A backend that completes every miss after a fixed latency."""

    def __init__(self, events: EventQueue, latency: int = 100):
        self.events = events
        self.latency = latency
        self.channels: List = []
        self.buses: List = []
        self.submissions: List = []
        self.counters = BackendCounters()

    def submit(self, address, now, is_write, on_complete=None):
        self.submissions.append((address, now, is_write))
        if on_complete is not None:
            self.events.at(now + self.latency,
                           lambda: on_complete(now + self.latency))

    def finalize(self, end):
        pass


def make_driver(mlp=2, latency=100):
    events = EventQueue()
    backend = InstantBackend(events, latency)
    config = table2_config(DesignPoint.NONSECURE, channels=1)
    driver = SimulationDriver(config, backend, events, mlp=mlp,
                              workload_name="unit")
    return driver, backend


def miss_trace(count, gap=0, stride=None):
    """Records guaranteed to miss a cold LLC (distinct lines)."""
    stride = stride if stride is not None else 1
    return [TraceRecord(gap, index * stride, False)
            for index in range(count)]


class TestDriverSemantics:
    def test_all_records_processed(self):
        driver, backend = make_driver()
        result = driver.run(miss_trace(10))
        assert result.miss_count == 10
        assert len(backend.submissions) == 10

    def test_llc_hits_do_not_reach_backend(self):
        driver, backend = make_driver()
        trace = [TraceRecord(0, 5, False)] * 4
        result = driver.run(trace)
        assert len(backend.submissions) == 1
        assert result.llc_hit_rate == pytest.approx(3 / 4)

    def test_mlp_window_bounds_overlap(self):
        """With MLP 1 every miss serializes on the previous completion."""
        serial_driver, _ = make_driver(mlp=1, latency=100)
        serial = serial_driver.run(miss_trace(10)).execution_cycles
        wide_driver, _ = make_driver(mlp=10, latency=100)
        wide = wide_driver.run(miss_trace(10)).execution_cycles
        assert serial >= 10 * 100
        assert wide < serial / 3

    def test_gaps_accumulate(self):
        driver, _ = make_driver(mlp=8, latency=1)
        result = driver.run(miss_trace(10, gap=500))
        assert result.execution_cycles >= 10 * 500

    def test_dirty_victims_posted_as_writes(self):
        driver, backend = make_driver()
        llc_lines = driver.llc.set_count * driver.llc.associativity
        # fill the LLC with writes, then stream far past it
        trace = [TraceRecord(0, index, True)
                 for index in range(llc_lines + 64)]
        driver.run(trace)
        writes = [entry for entry in backend.submissions if entry[2]]
        assert writes, "evicted dirty lines must be written back"

    def test_warmup_excluded_from_stats(self):
        driver, _ = make_driver(mlp=4)
        result = driver.run(miss_trace(100), warmup_records=50)
        assert result.miss_count == 50

    def test_warmup_keeps_timing_state(self):
        """Execution cycles measure the post-warm-up window only."""
        driver_full, _ = make_driver(mlp=1, latency=100)
        full = driver_full.run(miss_trace(100)).execution_cycles
        driver_half, _ = make_driver(mlp=1, latency=100)
        half = driver_half.run(miss_trace(100),
                               warmup_records=50).execution_cycles
        assert half < full

    def test_latency_recorded_per_miss(self):
        driver, _ = make_driver(mlp=4, latency=250)
        result = driver.run(miss_trace(20, gap=1000))
        assert result.miss_latency.mean == pytest.approx(250, abs=1)

    def test_empty_trace(self):
        driver, _ = make_driver()
        result = driver.run([])
        assert result.miss_count == 0
        assert result.execution_cycles == 0

    def test_in_order_retire_blocks_on_oldest(self):
        """A slow head miss must stall the window even if younger misses
        completed long ago."""
        events = EventQueue()

        class HeadBlocksBackend(InstantBackend):
            def submit(self, address, now, is_write, on_complete=None):
                latency = 10_000 if not self.submissions else 10
                self.submissions.append((address, now, is_write))
                if on_complete is not None:
                    self.events.at(now + latency,
                                   lambda: on_complete(now + latency))

        backend = HeadBlocksBackend(events)
        config = table2_config(DesignPoint.NONSECURE, channels=1)
        driver = SimulationDriver(config, backend, events, mlp=2,
                                  workload_name="unit")
        result = driver.run(miss_trace(6))
        # the third miss cannot issue before the first (10k) retires
        assert result.execution_cycles >= 10_000
