"""Integration tests for the adaptive control plane end to end.

The control loop must change behaviour (that's the point) without
changing the determinism or obliviousness contracts: adaptive reports
stay byte-identical across ``--jobs`` values and cached replays, the
decision log rides inside the digest-protected ledger core, morphed
tenants bypass the ORAM and replay their dirty blocks on
reclassification, and the :func:`repro.obs.audit.audit_adaptive_control`
gate holds — including its tainted-signal negative control.
"""

import pytest

from repro.control.morph import MorphController
from repro.control.plane import ServeControlPlane
from repro.obs.audit import audit_adaptive_control, run_full_audit
from repro.oram.path_oram import Op
from repro.parallel.cache import RunCache
from repro.serve.bench import ServeSpec, run_serve, run_serve_sweep
from repro.serve.loadgen import Request
from repro.serve.router import run_sharded
from repro.serve.scheduler import BatchingScheduler
from repro.serve.shard import ShardSpec
from repro.serve.slo import canonical_json


def adaptive_spec(**overrides):
    """A small adaptive serving point that exercises every controller."""
    base = dict(design="split", levels=6, rate=0.05, requests=96,
                capacity=8, batch=4, tenants=2, seed=7,
                adapt=True, slo_p99=512, window_ticks=256,
                declassified=("t1",))
    base.update(overrides)
    return ServeSpec(**base)


class _StubProtocol:
    """A link-less protocol double: constant-size blocks, logged calls."""

    def __init__(self, block_bytes=64):
        self.block_bytes = block_bytes
        self.calls = []

    def access(self, address, op, data=None):
        self.calls.append((address, op, data))
        return data if data is not None else bytes(self.block_bytes)


class TestSpecValidation:
    def test_declassified_requires_adapt(self):
        with pytest.raises(ValueError, match="adapt"):
            ServeSpec(declassified=("t0",))

    def test_adaptive_spec_round_trips(self):
        spec = adaptive_spec()
        assert ServeSpec.from_dict(spec.to_dict()) == spec

    def test_shard_spec_threads_control_fields(self):
        spec = ShardSpec(adapt=True, slo_p99=300, window_ticks=128,
                         declassified=("t0",))
        base = spec.base_spec()
        assert base.adapt and base.slo_p99 == 300
        assert base.window_ticks == 128
        assert base.declassified == ("t0",)


class TestAdaptiveDeterminism:
    def test_adaptive_report_is_byte_stable(self):
        spec = adaptive_spec()
        assert canonical_json(run_serve(spec)) == \
            canonical_json(run_serve(spec))

    def test_adaptive_report_carries_control_section(self):
        report = run_serve(adaptive_spec())
        control = report["control"]
        assert control["window_ticks"] == 256
        assert control["decisions"], "an adaptive run must log decisions"
        assert control["applied"] == sum(
            1 for d in control["decisions"] if d["applied"])
        assert report["totals"]["plain_accesses"] >= 0

    def test_open_loop_report_has_null_control(self):
        report = run_serve(adaptive_spec(adapt=False, declassified=()))
        assert report["control"] is None
        assert report["totals"]["plain_accesses"] == 0

    def test_adaptive_sweep_identical_across_jobs(self):
        specs = [adaptive_spec(), adaptive_spec(rate=0.02)]
        serial = run_serve_sweep(specs, jobs=1)
        fanned = run_serve_sweep(specs, jobs=2)
        assert canonical_json(serial) == canonical_json(fanned)

    def test_adaptive_sweep_identical_across_cache_replay(self, tmp_path):
        specs = [adaptive_spec()]
        cache = RunCache(str(tmp_path / "serve-cache"))
        first = run_serve_sweep(specs, jobs=1, cache=cache)
        replay = run_serve_sweep(specs, jobs=1, cache=cache)
        assert canonical_json(first) == canonical_json(replay)

    def test_adaptation_changes_the_outcome(self):
        """The loop must actually act: adaptive vs open-loop reports
        differ beyond the spec echo (knobs moved, behaviour followed)."""
        adaptive = run_serve(adaptive_spec(declassified=()))
        open_loop = run_serve(adaptive_spec(adapt=False, declassified=()))
        assert adaptive["control"]["applied"] > 0
        assert adaptive["totals"] != open_loop["totals"] or \
            adaptive["sojourn"] != open_loop["sojourn"]


class TestLedgerProtection:
    def test_decisions_ride_in_the_digest_core(self):
        from repro.obs.ledger import serve_core

        report = run_serve(adaptive_spec())
        core = serve_core(report, "fingerprint")
        assert core["measure"]["control"] == report["control"]

    def test_tampered_decision_changes_the_digest(self):
        import copy

        from repro.obs.ledger import core_digest, serve_core

        report = run_serve(adaptive_spec())
        honest = core_digest(serve_core(report, "fingerprint"))
        tampered = copy.deepcopy(report)
        tampered["control"]["decisions"][0]["applied"] = \
            not tampered["control"]["decisions"][0]["applied"]
        assert core_digest(serve_core(tampered, "fingerprint")) != honest


class TestMorphedServing:
    def _requests(self):
        """t0 (declassified): a hot burst, then silence, then a probe.

        Window 0-1 carry >= high-watermark requests each (sustained high
        load -> morph), windows 2-3 carry one request each (sustained
        low load -> reclassify), and the final probe re-reads a morphed-
        era address after reclassification.
        """
        payload = bytes(range(64))
        requests = []
        sequence = 0
        for window in range(2):
            for slot in range(8):
                requests.append(Request(
                    arrival=window * 100 + slot * 10, tenant="t0",
                    sequence=sequence, address=slot, op=Op.WRITE,
                    data=payload))
                sequence += 1
        for window in (2, 3):
            requests.append(Request(arrival=window * 100, tenant="t0",
                                    sequence=sequence, address=0,
                                    op=Op.READ))
            sequence += 1
        requests.append(Request(arrival=450, tenant="t0",
                                sequence=sequence, address=1, op=Op.READ))
        return requests

    def _run(self):
        morph = MorphController(frozenset({"t0"}), high_watermark=8,
                                low_watermark=2, sustain=2)
        plane = ServeControlPlane(100, morph=morph)
        protocol = _StubProtocol()
        scheduler = BatchingScheduler(protocol, queue_capacity=32,
                                      batch_size=1, control=plane,
                                      fallback_access_ticks=1)
        outcome = scheduler.run(self._requests())
        return protocol, plane, outcome

    def test_morphed_tenant_bypasses_the_protocol(self):
        protocol, _, outcome = self._run()
        assert outcome.plain_accesses > 0
        modes = [d for d in outcome.decisions if d.controller == "morph"]
        assert [d.after["mode"] for d in modes if d.applied] == \
            ["morphed", "secure"]

    def test_reclassification_replays_dirty_blocks(self):
        protocol, plane, outcome = self._run()
        # every address written while morphed came back under ORAM as a
        # real write carrying the overlay bytes
        replayed = {address for address, op, data in protocol.calls
                    if op is Op.WRITE and data == bytes(range(64))}
        assert replayed == set(range(8))
        assert plane.dirty == {}

    def test_morphed_read_after_reclassify_sees_written_bytes(self):
        morph = MorphController(frozenset({"t0"}), high_watermark=8,
                                low_watermark=2, sustain=2)
        plane = ServeControlPlane(100, morph=morph)
        scheduler = BatchingScheduler(_StubProtocol(), queue_capacity=32,
                                      batch_size=1, control=plane,
                                      keep_read_bytes=True,
                                      fallback_access_ticks=1)
        outcome = scheduler.run(self._requests())
        reads = {key: data for key, data in outcome.read_bytes.items()}
        # the window-2 read of address 0 is served from the overlay and
        # must see the bytes the morphed-era write stored there
        assert reads[("t0", 16)] == bytes(range(64))

    def test_control_overhead_is_charged(self):
        _, plane, outcome = self._run()
        assert outcome.control_overhead_ticks == plane.overhead_ticks
        assert outcome.control_overhead_ticks > 0


class TestShardedAdaptive:
    def spec(self, **overrides):
        base = dict(design="independent", levels=6, rate=0.05, requests=96,
                    capacity=8, batch=4, shards=2, subtrees=8,
                    migration_capacity=4, migration_drain=0.2, seed=7,
                    adapt=True, window_ticks=256, slo_p99=512)
        base.update(overrides)
        return ShardSpec(**base)

    def test_sharded_adaptive_identical_across_jobs(self):
        spec = self.spec()
        assert canonical_json(run_sharded(spec, jobs=1)) == \
            canonical_json(run_sharded(spec, jobs=2))

    def test_aggregate_control_section_folds_shards(self):
        report = run_sharded(self.spec(), jobs=1)
        control = report["control"]
        assert control is not None
        per_shard = [shard["control"] for shard in report["shards"]]
        assert control["decisions"] == sum(
            len(entry["decisions"]) for entry in per_shard) + \
            len(report["migration"]["control"]["decisions"])
        assert report["metrics"]["counters"]["control/decisions"] == \
            control["decisions"]

    def test_migration_controller_retargets_drain(self):
        report = run_sharded(self.spec(), jobs=1)
        migration = report["migration"]
        assert migration["control"]["window_ticks"] == 256
        assert migration["measured_utilization"] is not None
        assert migration["model"]["mm1k_overflow_at_measured"] is not None
        finals = migration["control"]["final"]
        for index in range(2):
            probability = finals[str(index)]
            assert 0.0 <= probability <= 1.0
            assert migration["per_shard"][str(index)][
                "drain_probability"] == probability

    def test_open_loop_sharded_has_no_control_sections(self):
        report = run_sharded(self.spec(adapt=False), jobs=1)
        assert report["control"] is None
        assert "control" not in report["migration"]


class TestAdaptiveAudit:
    def test_adaptive_control_is_indistinguishable(self):
        result = audit_adaptive_control()
        assert result.passed, result.describe()

    def test_tainted_signal_is_caught(self):
        result = audit_adaptive_control(taint_signal=True)
        assert not result.passed
        assert result.first_divergence is not None

    def test_full_audit_includes_both_directions(self):
        results = {result.name: result for result in run_full_audit()}
        assert results["control:adaptive"].passed
        negative = results[
            "negative-control:control:adaptive+tainted-signal"]
        assert not negative.passed
