"""Tests for the rank power manager (Section III-E)."""

import pytest

from repro.config import DramOrganization, DramTiming
from repro.core.lowpower import RankPowerManager
from repro.dram.channel import Channel
from repro.dram.commands import PowerState

TIMING = DramTiming()


def make_channel():
    return Channel(TIMING, DramOrganization(), scale=1)


class TestRankPowerManager:
    def test_all_ranks_parked_at_start(self):
        channel = make_channel()
        RankPowerManager(channel, enabled=True)
        assert all(rank.power_state is PowerState.POWER_DOWN
                   for rank in channel.ranks)

    def test_disabled_manager_touches_nothing(self):
        channel = make_channel()
        manager = RankPowerManager(channel, enabled=False)
        assert all(rank.power_state is PowerState.PRECHARGE_STANDBY
                   for rank in channel.ranks)
        assert manager.prepare_access(3, 500) == 500

    def test_wake_pays_exit_latency(self):
        channel = make_channel()
        manager = RankPowerManager(channel, enabled=True)
        ready = manager.prepare_access(2, 100)
        assert ready == 100 + TIMING.txp
        assert channel.ranks[2].power_state is PowerState.PRECHARGE_STANDBY

    def test_same_rank_is_free(self):
        channel = make_channel()
        manager = RankPowerManager(channel, enabled=True)
        manager.prepare_access(2, 100)
        assert manager.prepare_access(2, 500) == 500
        assert manager.switches == 1

    def test_switch_parks_previous_rank(self):
        channel = make_channel()
        manager = RankPowerManager(channel, enabled=True)
        manager.prepare_access(2, 100)
        manager.prepare_access(5, 1000)
        assert channel.ranks[2].power_state is PowerState.POWER_DOWN
        assert channel.ranks[5].power_state is PowerState.PRECHARGE_STANDBY
        assert manager.switches == 2
        assert manager.active_rank == 5

    def test_finish_parks_everything(self):
        channel = make_channel()
        manager = RankPowerManager(channel, enabled=True)
        manager.prepare_access(1, 100)
        manager.finish(2000)
        assert channel.ranks[1].power_state is PowerState.POWER_DOWN
        assert manager.active_rank is None

    def test_residency_accounting_accumulates_power_down(self):
        channel = make_channel()
        manager = RankPowerManager(channel, enabled=True)
        manager.prepare_access(0, 0)
        manager.prepare_access(1, 10_000)   # parks rank 0
        for rank in channel.ranks:
            rank.finalize(20_000)
        parked = channel.ranks[0].state_residency[PowerState.POWER_DOWN]
        assert parked >= 9_000

    def test_exit_counted(self):
        channel = make_channel()
        manager = RankPowerManager(channel, enabled=True)
        manager.prepare_access(0, 0)
        assert channel.ranks[0].power_down_exits == 1
