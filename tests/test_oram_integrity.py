"""Tests for encrypted bucket storage and PMMAC over a live ORAM."""

import pytest

from repro.oram.bucket import Block, Bucket
from repro.oram.integrity import (
    EncryptedBucketStore,
    IntegrityError,
    PlainBucketStore,
)
from repro.oram.path_oram import Op, PathOram
from repro.utils.rng import DeterministicRng

KEY = b"0123456789abcdef"


def encrypted_store(buckets=15):
    return EncryptedBucketStore(buckets, bucket_capacity=4, block_bytes=16,
                                key=KEY)


def full_bucket():
    bucket = Bucket(4, 16)
    bucket.insert(Block(1, 3, b"A" * 16))
    bucket.insert(Block(2, 5, b"B" * 16))
    return bucket


class TestPlainStore:
    def test_read_unwritten_is_empty(self):
        store = PlainBucketStore(15, 4, 16)
        assert store.read(3).occupancy == 0

    def test_write_then_read(self):
        store = PlainBucketStore(15, 4, 16)
        store.write(3, full_bucket())
        assert store.read(3).occupancy == 2

    def test_counter_tracked_without_mutating_caller(self):
        """Writes bump an internal counter; the argument is untouched."""
        store = PlainBucketStore(15, 4, 16)
        bucket = full_bucket()
        store.write(3, bucket)
        assert bucket.counter == 0
        assert store.read(3).counter == 1
        store.write(3, bucket)
        assert bucket.counter == 0
        assert store.read(3).counter == 2

    def test_read_returns_a_copy(self):
        """Mutating a read bucket must not leak into the store."""
        store = PlainBucketStore(15, 4, 16)
        store.write(3, full_bucket())
        taken = store.read(3)
        taken.clear()
        assert store.read(3).occupancy == 2

    def test_write_snapshots_the_argument(self):
        """Mutating the written bucket afterwards must not reach the store."""
        store = PlainBucketStore(15, 4, 16)
        bucket = full_bucket()
        store.write(3, bucket)
        bucket.clear()
        assert store.read(3).occupancy == 2

    def test_bounds(self):
        store = PlainBucketStore(15, 4, 16)
        with pytest.raises(ValueError):
            store.read(15)


class TestEncryptedStore:
    def test_roundtrip(self):
        store = encrypted_store()
        store.write(3, full_bucket())
        restored = store.read(3)
        blocks = {block.address: block for block in restored.blocks()}
        assert blocks[1].data == b"A" * 16
        assert blocks[2].leaf == 5

    def test_memory_holds_ciphertext_only(self):
        store = encrypted_store()
        store.write(3, full_bucket())
        ciphertext, _ = store.snapshot(3)
        assert b"A" * 16 not in ciphertext
        assert b"B" * 16 not in ciphertext

    def test_same_plaintext_distinct_ciphertexts(self):
        """Counter mode: rewriting identical content looks fresh on the bus."""
        store = encrypted_store()
        store.write(3, full_bucket())
        first, _ = store.snapshot(3)
        store.write(3, full_bucket())
        second, _ = store.snapshot(3)
        assert first != second

    def test_positions_get_distinct_ciphertexts(self):
        store = encrypted_store()
        store.write(3, full_bucket())
        store.write(4, full_bucket())
        assert store.snapshot(3)[0] != store.snapshot(4)[0]

    def test_tamper_detected(self):
        store = encrypted_store()
        store.write(3, full_bucket())
        ciphertext, _ = store.snapshot(3)
        corrupted = bytes([ciphertext[0] ^ 0x80]) + ciphertext[1:]
        store.tamper(3, corrupted)
        with pytest.raises(IntegrityError):
            store.read(3)

    def test_replay_detected(self):
        """The PMMAC counter chain catches stale-bucket replay."""
        store = encrypted_store()
        store.write(3, full_bucket())
        captured = store.snapshot(3)
        store.write(3, Bucket(4, 16))  # newer version
        store.replay(3, captured)
        with pytest.raises(IntegrityError):
            store.read(3)

    def test_deletion_detected(self):
        store = encrypted_store()
        store.write(3, full_bucket())
        del store._cells[3]
        with pytest.raises(IntegrityError):
            store.read(3)

    def test_relocation_detected(self):
        """Moving a valid cell to a different bucket index fails PMMAC."""
        store = encrypted_store()
        store.write(3, full_bucket())
        store.write(4, full_bucket())
        store.replay(4, store.snapshot(3))
        with pytest.raises(IntegrityError):
            store.read(4)

    def test_unwritten_bucket_is_empty(self):
        store = encrypted_store()
        assert store.read(7).occupancy == 0


class TestOramOverEncryptedStore:
    def make_oram(self):
        store = encrypted_store(buckets=63)
        oram = PathOram(levels=6, blocks_per_bucket=4, block_bytes=16,
                        stash_capacity=200,
                        rng=DeterministicRng(5, "enc"), store=store)
        return oram, store

    def test_end_to_end_correctness(self):
        oram, _ = self.make_oram()
        for address in range(10):
            oram.access(address, Op.WRITE, bytes([address]) * 16)
        for address in range(10):
            assert oram.access(address, Op.READ) == bytes([address]) * 16

    def test_verifications_happen(self):
        oram, store = self.make_oram()
        oram.access(1, Op.WRITE, b"x" * 16)
        oram.access(1, Op.READ)
        assert store.verifications > 0

    def test_tamper_mid_run_detected(self):
        oram, store = self.make_oram()
        oram.access(1, Op.WRITE, b"x" * 16)
        # corrupt the root bucket, which every access reads
        ciphertext, _ = store.snapshot(0)
        store.tamper(0, bytes([ciphertext[0] ^ 1]) + ciphertext[1:])
        with pytest.raises(IntegrityError):
            oram.access(1, Op.READ)


class TestStoreEquivalence:
    """Plain and encrypted stores are observationally equivalent.

    Both stores promise the same contract — reads hand back owned
    copies, writes snapshot without mutating the caller — so the same
    ORAM driven over both (same RNG stream) must return identical data
    and issue identical store traffic.  This is the differential test
    that pins the contract; it failed before ``PlainBucketStore.read``
    returned a copy.
    """

    def drive(self, store, ops):
        oram = PathOram(levels=6, blocks_per_bucket=4, block_bytes=16,
                        stash_capacity=200,
                        rng=DeterministicRng(13, "equiv"), store=store)
        outputs = []
        for address, op, payload in ops:
            outputs.append(oram.access(address, op, payload))
        return outputs

    def workload(self):
        rng = DeterministicRng(14, "equiv-workload")
        ops = []
        for _ in range(60):
            address = rng.randrange(12)
            if rng.randrange(2):
                ops.append((address, Op.WRITE,
                            bytes([rng.randrange(256)]) * 16))
            else:
                ops.append((address, Op.READ, None))
        return ops

    def test_same_outputs_and_store_traffic(self):
        ops = self.workload()
        plain = PlainBucketStore(63, 4, 16)
        encrypted = encrypted_store(buckets=63)
        assert self.drive(plain, ops) == self.drive(encrypted, ops)
        assert (plain.reads, plain.writes) == \
            (encrypted.reads, encrypted.writes)

    def test_caller_mutations_never_reach_either_store(self):
        """The aliasing probe: mutate everything the store hands back or
        receives, then check both stores still agree."""
        ops = self.workload()
        outputs = {}
        for name, store in (("plain", PlainBucketStore(63, 4, 16)),
                            ("encrypted", encrypted_store(buckets=63))):
            probe = full_bucket()
            store.write(3, probe)
            probe.clear()               # must not reach the store
            taken = store.read(3)
            taken.clear()               # must not reach the store either
            assert store.read(3).occupancy == 2
            outputs[name] = self.drive(store, ops)
        assert outputs["plain"] == outputs["encrypted"]
