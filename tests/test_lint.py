"""Tests for reprolint: rules, suppressions, output formats, exit codes.

Fixture files under ``tests/fixtures/lint/`` mirror the path layout the
rules scope on (``core/``, ``sim/``, ``crypto/``); each rule family has
a violating and a clean fixture, and the suppression fixtures exercise
both directive forms.
"""

import json
import os

import pytest

from repro.cli import main
from repro.lint import (SCHEMA_VERSION, all_rule_ids, lint_paths,
                        lint_source, to_payload)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


def rules_hit(result):
    return sorted({finding.rule_id for finding in result.findings})


class TestRegistry:
    def test_all_families_registered(self):
        assert all_rule_ids() == ["DET001", "DET002", "DET003",
                                  "LINT000", "LINT001",
                                  "SEC001", "SEC002", "SEC003", "SEC004"]

    def test_unknown_rule_selection_raises(self):
        with pytest.raises(KeyError):
            lint_source("x = 1", selected_rules=["NOPE999"])

    def test_selection_narrows(self):
        result = lint_paths([fixture("det001_bad.py")],
                            selected_rules=["SEC001"])
        assert result.findings == []


class TestSec001:
    def test_violations_detected(self):
        result = lint_paths([fixture("sec001_bad.py")])
        sec001 = [finding for finding in result.findings
                  if finding.rule_id == "SEC001"]
        assert len(sec001) == 4
        assert all("compare_digest" in finding.message
                   for finding in sec001)

    def test_clean_fixture(self):
        result = lint_paths([fixture("sec001_ok.py")])
        assert result.findings == []

    def test_fix_pattern_is_clean(self):
        source = ("import hmac\n"
                  "def verify(tag, expected):\n"
                  "    return hmac.compare_digest(tag, expected)\n")
        assert lint_source(source).findings == []


class TestSec002:
    # SEC002 is superseded by SEC003 on default runs; the per-function
    # rule still answers an explicit ``--select SEC002``.
    def test_violations_detected(self):
        result = lint_paths([fixture("core", "sec002_bad.py")],
                            selected_rules=["SEC002"])
        sec002 = [finding for finding in result.findings
                  if finding.rule_id == "SEC002"]
        assert len(sec002) == 6

    def test_superseded_on_default_runs(self):
        result = lint_paths([fixture("core", "sec002_bad.py")])
        assert "SEC002" not in rules_hit(result)

    def test_clean_fixture(self):
        result = lint_paths([fixture("core", "sec002_ok.py")])
        assert result.findings == []

    def test_path_scoping(self):
        source = "def f(leaf):\n    if leaf:\n        return 1\n"
        assert lint_source(source, path="core/handler.py").findings
        assert not lint_source(source, path="energy/model.py").findings

    def test_annotation_taint(self):
        source = ("def f(value):\n"
                  "    x = value  # reprolint: secret\n"
                  "    if x:\n"
                  "        return 1\n")
        result = lint_source(source, path="core/handler.py")
        assert rules_hit(result) == ["SEC002"]


class TestDet001:
    def test_violations_detected(self):
        result = lint_paths([fixture("det001_bad.py")])
        det001 = [finding for finding in result.findings
                  if finding.rule_id == "DET001"]
        assert len(det001) == 9

    def test_clean_fixture(self):
        result = lint_paths([fixture("det001_ok.py")])
        assert result.findings == []

    def test_imap_unordered_order_dependence_detected(self):
        result = lint_paths([fixture("det001_pool_bad.py")])
        assert rules_hit(result) == ["DET001"]
        assert len(result.findings) == 3
        messages = " ".join(finding.message for finding in result.findings)
        assert "imap_unordered" in messages
        assert "completion order" in messages

    def test_imap_unordered_sorted_merges_pass(self):
        result = lint_paths([fixture("det001_pool_ok.py")])
        assert result.findings == []

    def test_imap_unordered_sorted_in_other_scope_still_flagged(self):
        source = ("def consume(pool, run, work):\n"
                  "    out = []\n"
                  "    for item in pool.imap_unordered(run, work):\n"
                  "        out.append(item)\n"
                  "    return out\n"
                  "\n"
                  "def elsewhere(out):\n"
                  "    return sorted(out)\n")
        result = lint_source(source, path="src/repro/sim/fanout.py")
        assert rules_hit(result) == ["DET001"]

    def test_crypto_and_rng_paths_exempt(self):
        result = lint_paths([fixture("crypto", "det001_exempt.py")])
        assert result.findings == []
        source = "import time\nNOW = time.time()\n"
        assert lint_source(source, path="src/repro/utils/rng.py").findings \
            == []
        assert lint_source(source, path="src/repro/sim/cpu.py").findings


class TestDet002:
    def test_violations_detected(self):
        result = lint_paths([fixture("sim", "det002_bad.py")])
        det002 = [finding for finding in result.findings
                  if finding.rule_id == "DET002"]
        assert len(det002) == 5

    def test_clean_fixture(self):
        result = lint_paths([fixture("sim", "det002_ok.py")])
        assert result.findings == []

    def test_scoped_to_timing_layers(self):
        source = "busy_cycles = total / 2\n"
        assert lint_source(source, path="sim/bus.py").findings
        assert not lint_source(source, path="analysis/queueing.py").findings


class TestSuppressions:
    def test_per_line_directive(self):
        result = lint_paths([fixture("core", "sec002_suppressed.py")],
                            selected_rules=["SEC002"])
        assert len(result.findings) == 1      # only the audible one
        assert result.findings[0].line == 11
        assert result.suppressed_count == 1

    def test_sec002_token_does_not_silence_sec003(self):
        # Retagging is deliberate: a legacy SEC002 directive does not
        # carry over to the interprocedural finding on default runs.
        result = lint_paths([fixture("core", "sec002_suppressed.py")])
        assert "SEC003" in rules_hit(result)

    def test_multi_rule_directive(self):
        source = ("import time\n"
                  "busy_cycles = time.time() / 2  "
                  "# reprolint: disable=DET001,DET002 -- both\n")
        result = lint_source(source, path="sim/bus.py")
        assert result.findings == []
        assert result.suppressed_count == 2

    def test_multi_rule_directive_leaves_third_rule_audible(self):
        source = ("import time\n"
                  "busy_cycles = time.time() / 2  "
                  "# reprolint: disable=DET001,SEC001\n")
        result = lint_source(source, path="sim/bus.py")
        assert rules_hit(result) == ["DET002"]
        assert result.suppressed_count == 1

    def test_directive_in_docstring_is_inert(self):
        source = ('"""Docs show: # reprolint: disable-file=DET001."""\n'
                  "import time\n"
                  "NOW = time.time()\n")
        result = lint_source(source)
        assert rules_hit(result) == ["DET001"]
        assert result.suppressed_count == 0

    def test_file_level_directive(self):
        result = lint_paths([fixture("det001_suppressed_file.py")])
        assert result.findings == []
        assert result.suppressed_count == 2

    def test_disable_all_token(self):
        source = ("import time\n"
                  "NOW = time.time()  # reprolint: disable=all\n")
        result = lint_source(source)
        assert result.findings == []
        assert result.suppressed_count == 1

    def test_directive_for_other_rule_does_not_silence(self):
        source = ("import time\n"
                  "NOW = time.time()  # reprolint: disable=SEC001\n")
        result = lint_source(source)
        assert rules_hit(result) == ["DET001"]


class TestPathScoping:
    def test_exempt_marker_beats_scope_marker(self, tmp_path):
        # Precedence: an exempt marker anywhere in the path wins even
        # when a scoped marker also matches.
        source = ("def f(leaf):\n"
                  "    if leaf & 1:\n"
                  "        return 1\n"
                  "    return 0\n")
        scoped = tmp_path / "core" / "handler.py"
        scoped.parent.mkdir()
        scoped.write_text(source)
        exempt = tmp_path / "core" / "crypto" / "session.py"
        exempt.parent.mkdir()
        exempt.write_text(source)
        result = lint_paths([str(tmp_path)])
        assert {os.path.basename(finding.path)
                for finding in result.findings} == {"handler.py"}

    def test_exempt_origin_silences_lifted_findings(self):
        # SEC003 applies the same precedence to the *callee* side: a
        # sink inside crypto/ never lifts into scoped callers.
        from repro.lint.rules.sec003 import InterproceduralSecretFlow
        assert "crypto/" in InterproceduralSecretFlow.exempt_markers
        assert "core/" in InterproceduralSecretFlow.path_markers

    def test_rule_families_scope_independently(self):
        # The same file can be in one family's scope and out of
        # another's: stash code is SEC004 territory, sim/ is not.
        source = "def f(table, leaf):\n    return table[leaf]\n"
        assert lint_source(source, path="oram/stash.py",
                           selected_rules=["SEC002"]).findings == []


class TestJsonOutput:
    def test_schema(self):
        result = lint_paths([fixture("det001_bad.py")])
        payload = to_payload(result)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["tool"] == "reprolint"
        assert payload["exit_code"] == 1
        summary = payload["summary"]
        assert summary["files_checked"] == 1
        assert summary["finding_count"] == len(payload["findings"])
        assert summary["by_rule"] == {"DET001": summary["finding_count"]}
        for finding in payload["findings"]:
            assert set(finding) == {"rule", "path", "line", "column",
                                    "severity", "message"}
            assert finding["line"] > 0 and finding["column"] > 0

    def test_round_trips_through_json(self):
        payload = to_payload(lint_paths([fixture("sec001_bad.py")]))
        assert json.loads(json.dumps(payload)) == payload

    def test_findings_sorted(self):
        result = lint_paths([FIXTURES])
        keys = [(finding.path, finding.line, finding.column)
                for finding in result.findings]
        assert keys == sorted(keys)


class TestExitCodes:
    def test_clean_is_zero(self):
        assert lint_paths([fixture("det001_ok.py")]).exit_code() == 0

    def test_findings_are_one(self):
        assert lint_paths([fixture("det001_bad.py")]).exit_code() == 1

    def test_syntax_error_is_two(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        result = lint_paths([str(broken)])
        assert result.exit_code() == 2
        assert "syntax error" in result.errors[0].message


class TestCli:
    def test_clean_run(self, capsys, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, capsys):
        assert main(["lint", fixture("det001_bad.py")]) == 1
        output = capsys.readouterr().out
        assert "DET001" in output
        assert "det001_bad.py" in output

    def test_json_format(self, capsys):
        assert main(["lint", fixture("det001_bad.py"),
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["summary"]["finding_count"] > 0

    def test_select(self, capsys):
        assert main(["lint", fixture("det001_bad.py"),
                     "--select", "SEC001"]) == 0

    def test_unknown_rule_exit_two(self, capsys):
        assert main(["lint", fixture("det001_bad.py"),
                     "--select", "NOPE999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_exit_two(self, capsys):
        assert main(["lint", "does/not/exist"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        output = capsys.readouterr().out
        for rule_id in ("SEC001", "SEC002", "DET001", "DET002"):
            assert rule_id in output
