"""Tests for reprolint v2: the interprocedural engine and the new
runner modes (SARIF, baseline, parallel jobs, result cache, LINT00x).

The differential fixtures under ``tests/fixtures/lint/interproc/``
each isolate one flow the per-function SEC002 rule cannot see; the
clean fixtures prove the declassifiers hold the false-positive line.
"""

import ast
import json
import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.lint import (apply_baseline, finding_key, lint_paths,
                        load_baseline, render_baseline, render_sarif,
                        to_sarif)
from repro.lint.callgraph import build_project
from repro.lint.dataflow import SECRET, analyze

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "lint")


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


def rules_hit(result):
    return sorted({finding.rule_id for finding in result.findings})


def project_of(*named_sources):
    return build_project([(path, source, ast.parse(source))
                          for path, source in named_sources])


class TestCallGraph:
    def test_bare_name_resolves_same_module_first(self):
        project = project_of(
            ("core/a.py", "def helper(x):\n    return x\n"
                          "def caller(y):\n    return helper(y)\n"),
            ("core/b.py", "def helper(z):\n    return z\n"))
        info = project.functions["core/a.py::caller"]
        call = info.node.body[0].value
        resolved = project.resolve_call(call, info)
        assert [callee.qualname for callee in resolved] == \
            ["core/a.py::helper"]

    def test_self_method_resolves_within_class(self):
        project = project_of(
            ("core/c.py",
             "class Box:\n"
             "    def inner(self, v):\n"
             "        return v\n"
             "    def outer(self, v):\n"
             "        return self.inner(v)\n"))
        info = project.functions["core/c.py::Box.outer"]
        call = info.node.body[0].value
        assert [callee.qualname
                for callee in project.resolve_call(call, info)] == \
            ["core/c.py::Box.inner"]

    def test_attr_type_inferred_from_init(self):
        project = project_of(
            ("core/d.py",
             "class Engine:\n"
             "    def spin(self, v):\n"
             "        return v\n"
             "class Car:\n"
             "    def __init__(self):\n"
             "        self.engine = Engine()\n"
             "    def drive(self, v):\n"
             "        return self.engine.spin(v)\n"))
        info = project.functions["core/d.py::Car.drive"]
        call = info.node.body[0].value
        assert [callee.qualname
                for callee in project.resolve_call(call, info)] == \
            ["core/d.py::Engine.spin"]

    def test_ubiquitous_method_names_never_resolve_by_name(self):
        # ``store.get(...)`` must not resolve to an unrelated class's
        # ``get`` just because the project happens to define one.
        project = project_of(
            ("core/e.py",
             "class Cache:\n"
             "    def get(self, key):\n"
             "        if key:\n"
             "            return 1\n"
             "        return 0\n"
             "def fetch(store, key):\n"
             "    return store.get(key)\n"))
        info = project.functions["core/e.py::fetch"]
        call = info.node.body[0].value
        assert project.resolve_call(call, info) == []

    def test_distinctive_method_name_resolves_by_name(self):
        project = project_of(
            ("core/f.py",
             "class Geometry:\n"
             "    def deepest_common(self, a, b):\n"
             "        return a ^ b\n"
             "def use(geometry, a, b):\n"
             "    return geometry.deepest_common(a, b)\n"))
        info = project.functions["core/f.py::use"]
        call = info.node.body[0].value
        assert [callee.qualname
                for callee in project.resolve_call(call, info)] == \
            ["core/f.py::Geometry.deepest_common"]


class TestDataflowEngine:
    def test_return_summary_carries_parameter_tokens(self):
        project = project_of(("core/g.py",
                              "def ident(value):\n    return value\n"))
        taint = analyze(project)
        summary = taint.summaries["core/g.py::ident"]
        assert "P:value" in summary.return_deps

    def test_decrypt_is_a_secret_source(self):
        project = project_of(
            ("core/h.py",
             "def open_block(session, frame):\n"
             "    data = session.decrypt_block(frame)\n"
             "    if data:\n"
             "        return 1\n"
             "    return 0\n"))
        taint = analyze(project)
        assert any(flow.line == 3 for flow in taint.flows)

    def test_fresh_rng_declassifies_vocabulary_targets(self):
        project = project_of(
            ("core/i.py",
             "def remap(rng, n_leaves):\n"
             "    leaf = rng.random_leaf(n_leaves)\n"
             "    if leaf == 0:\n"
             "        return 1\n"
             "    return 0\n"))
        taint = analyze(project)
        assert taint.flows == []

    def test_structural_counts_are_not_secret(self):
        project = project_of(
            ("core/j.py",
             "def owner_of(leaf_count, group):\n"
             "    if leaf_count > 4:\n"
             "        return group\n"
             "    return 0\n"))
        taint = analyze(project)
        assert taint.flows == []

    def test_secret_attribute_threads_between_methods(self):
        result = lint_paths([fixture("interproc", "core", "attr_flow.py")])
        assert rules_hit(result) == ["SEC003"]
        assert [finding.line for finding in result.findings] == [17]


class TestSec003Fixtures:
    def test_lifted_and_in_place_flow_in_one_module(self):
        result = lint_paths([fixture("interproc", "core",
                                     "lifted_call.py")])
        assert rules_hit(result) == ["SEC003"]
        lines = sorted(finding.line for finding in result.findings)
        assert lines == [9, 15]
        lifted = [finding for finding in result.findings
                  if finding.line == 15]
        assert "route_for()" in lifted[0].message
        assert "lifted_call.py:9" in lifted[0].message

    def test_cross_module_flow(self):
        result = lint_paths([fixture("interproc")])
        by_path = {}
        for finding in result.findings:
            by_path.setdefault(os.path.basename(finding.path),
                               []).append(finding)
        # lifted at the caller, in place at the callee
        assert [f.line for f in by_path["cross_module_caller.py"]] == [8]
        assert [f.line for f in by_path["cross_module_sink.py"]] == [11]

    def test_annotation_source(self):
        result = lint_paths([fixture("interproc", "core",
                                     "annotation_source.py")])
        assert rules_hit(result) == ["SEC003"]
        assert [finding.line for finding in result.findings] == [16]

    def test_ternary_and_loop_bound(self):
        result = lint_paths([fixture("interproc", "core",
                                     "ternary_and_bound.py")])
        kinds = sorted(finding.message.split(" depends")[0]
                       for finding in result.findings)
        assert kinds == ["conditional expression", "loop bound"]

    def test_clean_fixtures_have_zero_findings(self):
        for name in ("declassified_ok.py", "chain_ok.py"):
            result = lint_paths([fixture("interproc", "core", name)])
            assert result.findings == [], name


class TestSec004Fixtures:
    def test_secret_index_and_membership_probe(self):
        result = lint_paths([fixture("interproc", "stash_index.py")])
        sec004 = [finding for finding in result.findings
                  if finding.rule_id == "SEC004"]
        assert len(sec004) == 2
        messages = " ".join(finding.message for finding in sec004)
        assert "subscript index" in messages
        assert "membership probe" in messages

    def test_oblivious_scan_is_clean(self):
        result = lint_paths([fixture("interproc", "stash_scan_ok.py")])
        assert result.findings == []


class TestDet003Fixtures:
    def test_worker_global_mutation_and_order_dependent_fold(self):
        result = lint_paths([fixture("parallel", "det003_bad.py")])
        det003 = [finding for finding in result.findings
                  if finding.rule_id == "DET003"]
        messages = " ".join(finding.message for finding in det003)
        assert "_SCRATCH" in messages
        assert "completion order" in messages

    def test_clean_pool_usage(self):
        result = lint_paths([fixture("parallel", "det003_ok.py")])
        assert result.findings == []


class TestLint000:
    def test_syntax_error_fixture_yields_structured_finding(self):
        result = lint_paths([fixture("lint000_invalid.py")])
        assert rules_hit(result) == ["LINT000"]
        finding = result.findings[0]
        assert finding.line == 3
        assert "syntax error" in finding.message
        assert result.exit_code() == 2

    def test_unreadable_file_yields_structured_finding(self, tmp_path):
        target = tmp_path / "core" / "locked.py"
        target.parent.mkdir()
        target.write_text("x = 1\n")
        target.chmod(0)
        if os.access(str(target), os.R_OK):      # running as root
            pytest.skip("cannot make file unreadable on this host")
        result = lint_paths([str(target)])
        assert rules_hit(result) == ["LINT000"]
        assert result.exit_code() == 2

    def test_lint000_is_not_suppressible(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("# reprolint: disable-file=all\ndef f(:\n")
        result = lint_paths([str(broken)])
        assert rules_hit(result) == ["LINT000"]


class TestLint001:
    def test_unused_directive_reported(self, tmp_path):
        target = tmp_path / "quiet.py"
        target.write_text("x = 1  # reprolint: disable=DET001 -- stale\n")
        result = lint_paths([str(target)],
                            warn_unused_suppressions=True)
        assert rules_hit(result) == ["LINT001"]
        assert "DET001" in result.findings[0].message

    def test_used_directive_not_reported(self, tmp_path):
        target = tmp_path / "busy.py"
        target.write_text("import time\n"
                          "NOW = time.time()  "
                          "# reprolint: disable=DET001 -- justified\n")
        result = lint_paths([str(target)],
                            warn_unused_suppressions=True)
        assert result.findings == []
        assert result.suppressed_count == 1

    def test_off_by_default(self, tmp_path):
        target = tmp_path / "quiet.py"
        target.write_text("x = 1  # reprolint: disable=DET001 -- stale\n")
        assert lint_paths([str(target)]).findings == []

    def test_legacy_sec002_token_judged_through_supersession(self, tmp_path):
        # A SEC002 directive that silences nothing is reported even
        # though SEC002 itself is skipped on default runs.
        target = tmp_path / "retired.py"
        target.write_text("x = 1  # reprolint: disable=SEC002 -- stale\n")
        result = lint_paths([str(target)],
                            warn_unused_suppressions=True)
        assert rules_hit(result) == ["LINT001"]


class TestBaseline:
    def test_round_trip(self):
        result = lint_paths([fixture("interproc", "core",
                                     "lifted_call.py")])
        assert result.findings
        accepted = load_baseline(render_baseline(result))
        assert accepted == {finding_key(finding)
                            for finding in result.findings}
        apply_baseline(result, accepted)
        assert result.findings == []
        assert len(result.baselined) == 2
        assert result.exit_code() == 0

    def test_baseline_is_line_independent(self):
        result = lint_paths([fixture("interproc", "core",
                                     "lifted_call.py")])
        assert all(str(finding.line) not in finding_key(finding).split("|")
                   for finding in result.findings)

    def test_new_findings_stay_audible(self):
        result = lint_paths([fixture("interproc", "core",
                                     "lifted_call.py")])
        apply_baseline(result, set())
        assert len(result.findings) == 2
        assert result.exit_code() == 1

    def test_malformed_baseline_raises(self):
        with pytest.raises(ValueError):
            load_baseline("not json at all")
        with pytest.raises(ValueError):
            load_baseline(json.dumps({"findings": []}))  # no version

    def test_cli_write_then_apply(self, tmp_path, capsys):
        baseline = tmp_path / "lint-baseline.json"
        assert main(["lint", fixture("interproc", "core",
                                     "lifted_call.py"),
                     "--write-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["lint", fixture("interproc", "core",
                                     "lifted_call.py"),
                     "--baseline", str(baseline)]) == 0
        assert "2 baselined" in capsys.readouterr().out


class TestSarif:
    def test_document_shape(self):
        result = lint_paths([fixture("interproc", "core",
                                     "lifted_call.py")])
        document = to_sarif(result)
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "reprolint"
        assert {rule["id"] for rule in driver["rules"]} >= \
            {"SEC003", "SEC004", "DET003", "LINT000", "LINT001"}
        assert len(run["results"]) == 2
        for entry in run["results"]:
            location = entry["locations"][0]["physicalLocation"]
            assert location["region"]["startLine"] > 0

    def test_baselined_findings_marked_unchanged(self):
        result = lint_paths([fixture("interproc", "core",
                                     "lifted_call.py")])
        apply_baseline(result,
                       {finding_key(f) for f in result.findings})
        document = to_sarif(result)
        states = [entry.get("baselineState")
                  for entry in document["runs"][0]["results"]]
        assert states == ["unchanged", "unchanged"]

    def test_render_is_valid_json(self):
        result = lint_paths([fixture("interproc", "core",
                                     "chain_ok.py")])
        document = json.loads(render_sarif(result))
        assert document["runs"][0]["results"] == []
        assert document["runs"][0]["invocations"][0][
            "executionSuccessful"] is True


class TestParallelRunner:
    def test_jobs_output_identical_to_serial(self):
        serial = lint_paths([FIXTURES], jobs=1)
        parallel = lint_paths([FIXTURES], jobs=4)
        assert [f.render() for f in parallel.findings] == \
            [f.render() for f in serial.findings]
        assert parallel.suppressed_count == serial.suppressed_count
        assert [e.message for e in parallel.errors] == \
            [e.message for e in serial.errors]
        assert parallel.files_checked == serial.files_checked

    def test_cli_jobs_byte_identical(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(os.path.dirname(FIXTURES),
                                         "..", "..", "src")
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.path.join(root, "src")
        outputs = []
        for jobs in ("1", "3"):
            process = subprocess.run(
                [sys.executable, "-m", "repro", "lint", FIXTURES,
                 "--jobs", jobs],
                capture_output=True, env=env, cwd=root)
            outputs.append(process.stdout)
        assert outputs[0] == outputs[1]

    def test_cache_round_trip(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = lint_paths([fixture("interproc", "core",
                                    "lifted_call.py")],
                           cache_dir=cache_dir)
        assert os.listdir(cache_dir)          # populated
        second = lint_paths([fixture("interproc", "core",
                                     "lifted_call.py")],
                            cache_dir=cache_dir)
        assert [f.render() for f in second.findings] == \
            [f.render() for f in first.findings]
        assert second.suppressed_count == first.suppressed_count
