"""Tests for the Merkle-tree integrity substrate."""

import pytest

from repro.config import OramConfig
from repro.oram.bucket import Block, Bucket
from repro.oram.integrity import IntegrityError
from repro.oram.merkle import MerkleBucketStore, integrity_traffic_comparison
from repro.oram.path_oram import Op, PathOram
from repro.utils.rng import DeterministicRng

KEY = b"0123456789abcdef"


def make_store(levels=5):
    return MerkleBucketStore(levels, bucket_capacity=4, block_bytes=16,
                             key=KEY)


def full_bucket(value=0xAA):
    bucket = Bucket(4, 16)
    bucket.insert(Block(1, 3, bytes([value]) * 16))
    return bucket


class TestMerkleStore:
    def test_roundtrip(self):
        store = make_store()
        store.write(3, full_bucket())
        restored = store.read(3)
        assert restored.blocks()[0].data == b"\xaa" * 16

    def test_unwritten_reads_empty(self):
        store = make_store()
        assert store.read(7).occupancy == 0

    def test_many_buckets(self):
        store = make_store()
        for index in range(store.bucket_count):
            store.write(index, full_bucket(index % 256))
        for index in range(store.bucket_count):
            assert store.read(index).blocks()[0].data == \
                bytes([index % 256]) * 16

    def test_tamper_detected(self):
        store = make_store()
        store.write(3, full_bucket())
        (counter, ciphertext), _ = store.snapshot(3)
        store.tamper(3, bytes([ciphertext[0] ^ 1]) + ciphertext[1:])
        with pytest.raises(IntegrityError):
            store.read(3)

    def test_hash_tamper_detected(self):
        """Corrupting an intermediate hash breaks the chain to the root."""
        store = make_store()
        store.write(3, full_bucket())
        parent = store.geometry.parent(3)
        store._hashes[parent] = b"\xff" * 16
        with pytest.raises(IntegrityError):
            store.read(3)

    def test_replay_detected_by_root(self):
        """Replaying a full (cell + hash path) snapshot still fails: the
        on-chip root hash has moved on."""
        store = make_store()
        store.write(3, full_bucket(0x11))
        captured_cell, captured_hashes = store.snapshot(3)
        store.write(3, full_bucket(0x22))
        store.replay(3, captured_cell, captured_hashes)
        with pytest.raises(IntegrityError):
            store.read(3)

    def test_sibling_updates_do_not_invalidate(self):
        """Writing one child must keep the other child verifiable."""
        store = make_store()
        store.write(1, full_bucket(0x01))
        store.write(2, full_bucket(0x02))
        store.write(1, full_bucket(0x03))
        assert store.read(2).blocks()[0].data == b"\x02" * 16

    def test_ciphertext_only_in_memory(self):
        store = make_store()
        store.write(0, full_bucket())
        (_, ciphertext), _ = store.snapshot(0)
        assert b"\xaa" * 16 not in ciphertext


class TestAdversarialHooks:
    """Contract of the snapshot/tamper/replay hooks the fault layer uses."""

    def test_snapshot_of_unwritten_cell_is_none(self):
        assert make_store().snapshot(4) is None

    def test_replay_of_the_current_snapshot_verifies_cleanly(self):
        """A replay that changes nothing is no replay at all — the fault
        injector relies on this to restore cells after a detection."""
        store = make_store()
        store.write(3, full_bucket(0x11))
        cell, hashes = store.snapshot(3)
        store.replay(3, cell, dict(hashes))
        assert store.read(3).blocks()[0].data == b"\x11" * 16

    def test_replay_of_a_leaf_is_detected(self):
        store = make_store()
        leaf = store.bucket_count - 1
        store.write(leaf, full_bucket(0x11))
        cell, hashes = store.snapshot(leaf)
        store.write(leaf, full_bucket(0x22))
        store.replay(leaf, cell, dict(hashes))
        with pytest.raises(IntegrityError) as excinfo:
            store.read(leaf)
        assert excinfo.value.kind in ("hash", "root")
        assert excinfo.value.index == leaf

    def test_replay_of_an_interior_node_is_detected(self):
        """An interior cell's replay must fail even when read through a
        descendant's path verification."""
        store = make_store()
        child = 3
        parent = store.geometry.parent(child)
        store.write(parent, full_bucket(0x11))
        store.write(child, full_bucket(0x22))
        cell, hashes = store.snapshot(parent)
        store.write(parent, full_bucket(0x33))
        store.replay(parent, cell, dict(hashes))
        with pytest.raises(IntegrityError):
            store.read(child)

    def test_tamper_is_healed_by_replaying_a_clean_snapshot(self):
        store = make_store()
        store.write(3, full_bucket(0x11))
        cell, hashes = store.snapshot(3)
        (_, ciphertext) = cell
        store.tamper(3, bytes([ciphertext[0] ^ 1]) + ciphertext[1:])
        with pytest.raises(IntegrityError):
            store.read(3)
        store.replay(3, cell, dict(hashes))
        assert store.read(3).blocks()[0].data == b"\x11" * 16


class TestOramOverMerkle:
    def test_path_oram_end_to_end(self):
        store = make_store(levels=6)
        oram = PathOram(levels=6, blocks_per_bucket=4, block_bytes=16,
                        stash_capacity=200,
                        rng=DeterministicRng(7, "merkle"), store=store)
        for address in range(12):
            oram.access(address, Op.WRITE, bytes([address]) * 16)
        for address in range(12):
            assert oram.access(address, Op.READ) == bytes([address]) * 16
        assert store.hash_checks > 0

    def test_mid_run_tamper_detected(self):
        store = make_store(levels=6)
        oram = PathOram(levels=6, blocks_per_bucket=4, block_bytes=16,
                        stash_capacity=200,
                        rng=DeterministicRng(8, "merkle"), store=store)
        oram.access(1, Op.WRITE, b"x" * 16)
        (counter, ciphertext), _ = store.snapshot(0)
        store.tamper(0, bytes([ciphertext[0] ^ 0x80]) + ciphertext[1:])
        with pytest.raises(IntegrityError):
            oram.access(1, Op.READ)


class TestTrafficComparison:
    def test_pmmac_is_free(self):
        comparison = integrity_traffic_comparison(
            OramConfig(levels=28, cached_levels=7), 7)
        assert comparison["pmmac_extra_lines"] == 0.0

    def test_merkle_costs_a_few_percent(self):
        comparison = integrity_traffic_comparison(
            OramConfig(levels=28, cached_levels=7), 7)
        assert 0 < comparison["merkle_overhead_fraction"] < 0.1

    def test_baseline_matches_traffic_model(self):
        from repro.analysis.traffic import baseline_lines_per_access
        oram = OramConfig(levels=28, cached_levels=7)
        comparison = integrity_traffic_comparison(oram, 7)
        assert comparison["baseline_lines"] == \
            baseline_lines_per_access(oram, 7)
