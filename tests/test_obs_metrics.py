"""Phase attribution, the metrics registry, and the RunResult extension."""

import pytest

from repro.config import DesignPoint, small_config
from repro.obs.metrics import (IDLE_PHASE, Counter, Gauge, Histogram,
                               MetricsRegistry, phase_breakdown,
                               summarize_phase_breakdown)
from repro.obs.tracer import CATEGORY_PROTOCOL, CollectingTracer
from repro.sim.stats import LatencyStats
from repro.sim.system import run_simulation
from repro.utils.rng import DeterministicRng


def _span(tracer, name, start, end, lane="lane0"):
    tracer.span(name, CATEGORY_PROTOCOL, lane, start, end)


class TestPhaseBreakdown:
    def test_empty_window(self):
        assert phase_breakdown([], 10, 10) == {}

    def test_no_spans_is_all_idle(self):
        assert phase_breakdown([], 0, 100) == {IDLE_PHASE: 100}

    def test_exclusive_attribution_sums_to_window(self):
        tracer = CollectingTracer()
        _span(tracer, "ACCESS", 0, 50)
        _span(tracer, "PROBE", 20, 30)          # higher priority, nested
        _span(tracer, "APPEND", 70, 90, lane="lane1")
        breakdown = phase_breakdown(tracer.events, 0, 100)
        assert breakdown == {"ACCESS": 40, "PROBE": 10, "APPEND": 20,
                             IDLE_PHASE: 30}
        assert sum(breakdown.values()) == 100

    def test_priority_resolves_overlap(self):
        # PROBE outranks ACCESS for the overlapped region regardless of
        # which lane either span lives on.
        tracer = CollectingTracer()
        _span(tracer, "ACCESS", 0, 10, lane="a")
        _span(tracer, "PROBE", 0, 10, lane="b")
        assert phase_breakdown(tracer.events, 0, 10) == {"PROBE": 10}

    def test_spans_clipped_to_window(self):
        tracer = CollectingTracer()
        _span(tracer, "ACCESS", 0, 1000)
        breakdown = phase_breakdown(tracer.events, 100, 200)
        assert breakdown == {"ACCESS": 100}

    def test_real_run_breakdown_matches_execution_cycles(self):
        # The ISSUE acceptance criterion: the per-phase breakdown must sum
        # to within 1% of execution_cycles.  The sweep construction makes
        # it exact, which this asserts.
        tracer = CollectingTracer()
        config = small_config(DesignPoint.INDEP_2)
        result = run_simulation(config, "mcf", trace_length=700,
                                tracer=tracer)
        assert result.phase_cycles, "tracing run must produce a breakdown"
        total = sum(result.phase_cycles.values())
        assert total == result.execution_cycles
        assert "phase_cycles" in result.to_dict()

    def test_untraced_run_has_empty_breakdown(self):
        config = small_config(DesignPoint.NONSECURE)
        result = run_simulation(config, "mcf", trace_length=400)
        assert result.phase_cycles == {}


class TestMetricsPrimitives:
    def test_counter_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_tracks_extremes(self):
        gauge = Gauge("g")
        for value in (5, 2, 9):
            gauge.set(value)
        assert (gauge.value, gauge.minimum, gauge.maximum) == (9, 2, 9)

    def test_histogram_buckets_by_bit_length(self):
        histogram = Histogram("h")
        for value in (0, 1, 2, 3, 4):
            histogram.record(value)
        assert histogram.count == 5
        assert histogram.mean == 2.0
        assert histogram.buckets == {0: 1, 1: 1, 2: 2, 3: 1}

    def test_registry_folds_events(self):
        tracer = CollectingTracer()
        tracer.span("PATH_READ", CATEGORY_PROTOCOL, "s0", 0, 64)
        tracer.counter("queue_depth", "dram", "main0", 5, 3)
        tracer.instant("issue", "dram", "main0", 6)
        summary = MetricsRegistry().from_events(tracer.events).as_dict()
        assert summary["histograms"]["protocol/PATH_READ"]["count"] == 1
        assert summary["gauges"]["dram/queue_depth"]["max"] == 3
        assert summary["counters"]["dram/issue"] == 1

    def test_summary_lines_are_share_sorted(self):
        lines = summarize_phase_breakdown({"a": 25, "b": 75})
        assert lines[0].startswith("b")
        assert "75.0%" in lines[0]


class TestLatencyStatsPercentile:
    def test_nearest_rank_boundaries(self):
        stats = LatencyStats()
        for value in (10, 20, 30):
            stats.record(value)
        # ceil nearest-rank: p0 and anything below 1/n hit the minimum,
        # p100 the maximum, with no below-minimum bias at the edges.
        assert stats.percentile(0.0) == 10
        assert stats.percentile(1 / 3) == 10
        assert stats.percentile(0.34) == 20
        assert stats.percentile(0.5) == 20
        assert stats.percentile(2 / 3) == 20
        assert stats.percentile(0.99) == 30
        assert stats.percentile(1.0) == 30

    def test_fraction_out_of_range_rejected(self):
        stats = LatencyStats()
        stats.record(1)
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                stats.percentile(bad)

    def test_single_sample(self):
        stats = LatencyStats()
        stats.record(42)
        assert stats.percentile(0.01) == 42
        assert stats.percentile(0.99) == 42


class TestReservoirSampling:
    def test_reservoir_is_deterministic_and_unbiased_window(self):
        def collect(seed):
            stats = LatencyStats(sample_cap=8,
                                 sample_rng=DeterministicRng(seed, "r"))
            for value in range(1000):
                stats.record(value)
            return stats

        first = collect(11)
        second = collect(11)
        assert first.samples == second.samples          # DET001
        assert first.count == 1000
        assert len(first.samples) == 8
        # Algorithm R replaces early entries: a first-N truncation would
        # report max(samples) == 7 and bias every percentile low.
        assert max(first.samples) > 7
        assert collect(12).samples != first.samples

    def test_without_rng_falls_back_to_first_n(self):
        stats = LatencyStats(sample_cap=4)
        for value in range(10):
            stats.record(value)
        assert stats.samples == [0, 1, 2, 3]
        assert stats.count == 10


class TestEmptyInputs:
    """Pin the empty-input shapes the ledger and dashboard rely on: an
    empty histogram renders a bare zero dict (no buckets invented), and
    an empty latency summary is the explicit zero ladder — not None, not
    a KeyError, and byte-stable under json round-trips."""

    def test_empty_histogram_as_dict(self):
        import json

        as_dict = Histogram("empty").as_dict()
        assert as_dict == {"count": 0, "total": 0, "buckets": {}}
        assert json.loads(json.dumps(as_dict, sort_keys=True)) == as_dict

    def test_empty_latency_summary_is_explicit_zero_ladder(self):
        summary = LatencyStats().summary()
        assert summary == {"count": 0, "mean": 0.0, "max": 0,
                           "p50": 0, "p95": 0, "p99": 0, "p999": 0}
        assert isinstance(summary["mean"], float)
        assert LatencyStats().mean == 0.0
        assert LatencyStats().percentile(0.99) == 0

    def test_zero_count_nonempty_samples_impossible_shape_guard(self):
        # counted-but-unsampled (cap 0) still yields the ladder keys
        stats = LatencyStats(sample_cap=0)
        stats.record(7)
        summary = stats.summary()
        assert summary["count"] == 1
        assert set(summary) == {"count", "mean", "max",
                                "p50", "p95", "p99", "p999"}
