"""Targeted edge-path tests for the SDIMM protocol machinery.

These force the rare paths the broad stateful tests hit only by chance:
accessing a block while it waits in a transfer queue, appends to wrong
owners, queue overflow propagation, and vacancy servicing.
"""

import pytest

from repro.core.indep_split import SplitGroup
from repro.core.independent import IndependentBuffer
from repro.core.transfer_queue import TransferQueueOverflow
from repro.oram.bucket import Block
from repro.oram.path_oram import Op
from repro.utils.rng import DeterministicRng


def make_buffer(sdimm_id=0, total=2, levels=7, queue_capacity=8, p=0.0):
    return IndependentBuffer(
        sdimm_id=sdimm_id, total_sdimms=total, global_levels=levels,
        blocks_per_bucket=4, block_bytes=16, stash_capacity=200,
        transfer_queue_capacity=queue_capacity, drain_probability=p,
        rng=DeterministicRng(13, f"edge{sdimm_id}"))


def owned_leaf(buffer, local=0):
    """A global leaf owned by this buffer."""
    return (buffer.sdimm_id << buffer._local_leaf_bits) | local


class TestIndependentBufferEdges:
    def test_access_block_waiting_in_queue(self):
        """A block can be accessed while still in the transfer queue."""
        buffer = make_buffer()
        leaf = owned_leaf(buffer, 3)
        buffer.append(Block(99, leaf, b"Q" * 16))
        assert 99 in buffer.queue
        outcome = buffer.access(99, leaf, Op.READ, None)
        assert outcome.data == b"Q" * 16
        assert 99 not in buffer.queue

    def test_wrong_owner_leaf_rejected(self):
        buffer = make_buffer(sdimm_id=0, total=2)
        foreign_leaf = owned_leaf(make_buffer(sdimm_id=1), 0)
        with pytest.raises(ValueError):
            buffer.access(1, foreign_leaf, Op.READ, None)

    def test_dummy_append_is_free(self):
        buffer = make_buffer()
        assert buffer.append(None) == 0
        assert len(buffer.queue) == 0

    def test_queue_overflow_propagates(self):
        buffer = make_buffer(queue_capacity=2, p=0.0)
        leaf = owned_leaf(buffer)
        buffer.append(Block(1, leaf, bytes(16)))
        buffer.append(Block(2, leaf, bytes(16)))
        with pytest.raises(TransferQueueOverflow):
            buffer.append(Block(3, leaf, bytes(16)))

    def test_departure_services_queue(self):
        """When a block migrates away, a queued block fills the vacancy."""
        buffer = make_buffer()
        leaf = owned_leaf(buffer, 5)
        buffer.append(Block(50, leaf, b"W" * 16))
        # access blocks repeatedly until one draws a foreign new leaf
        serviced = False
        for address in range(40):
            buffer.access(address, owned_leaf(buffer, address % 4),
                          Op.WRITE, bytes(16))
            if buffer.queue.vacancy_services > 0:
                serviced = True
                break
        assert serviced
        assert 50 in buffer.oram.stash or 50 not in buffer.queue

    def test_drain_spends_dummy_access(self):
        buffer = make_buffer(p=1.0)
        before = buffer.oram.dummy_access_count
        leaf = owned_leaf(buffer, 0)
        drains = buffer.append(Block(7, leaf, b"D" * 16))
        assert drains == 1
        assert buffer.oram.dummy_access_count == before + 1
        # the drained block left the queue and is retrievable at its leaf
        assert 7 not in buffer.queue
        outcome = buffer.access(7, leaf, Op.READ, None)
        assert outcome.data == b"D" * 16

    def test_write_requires_full_payload(self):
        buffer = make_buffer()
        with pytest.raises(ValueError):
            buffer.access(1, owned_leaf(buffer), Op.WRITE, b"short")


class TestSplitGroupEdges:
    def make_group(self, p=0.0):
        return SplitGroup(
            group_id=0, groups=2, global_levels=7, ways=2,
            blocks_per_bucket=4, block_bytes=16, stash_capacity=200,
            transfer_queue_capacity=8, drain_probability=p,
            rng=DeterministicRng(17, "group-edge"), key=b"edge-key-16byte!")

    def group_leaf(self, group, local=0):
        return (group.group_id << group._local_leaf_bits) | local

    def test_access_block_waiting_in_queue(self):
        group = self.make_group()
        leaf = self.group_leaf(group, 2)
        group.append(Block(42, leaf, b"G" * 16))
        assert 42 in group.queue
        outcome = group.access(42, leaf, Op.READ, None)
        assert outcome.data == b"G" * 16
        assert 42 not in group.queue
        assert group.split.stashes_aligned()

    def test_wrong_group_leaf_rejected(self):
        group = self.make_group()
        foreign = (1 << group._local_leaf_bits)
        with pytest.raises(ValueError):
            group.access(1, foreign, Op.READ, None)

    def test_drain_runs_dummy_split_access(self):
        group = self.make_group(p=1.0)
        accesses_before = group.split.accesses
        drains = group.append(Block(9, self.group_leaf(group), bytes(16)))
        assert drains == 1
        assert group.split.accesses == accesses_before + 1
        assert group.split.stashes_aligned()

    def test_holds_reports_queue_and_stash(self):
        group = self.make_group()
        leaf = self.group_leaf(group, 1)
        assert not group.holds(5)
        group.append(Block(5, leaf, bytes(16)))
        assert group.holds(5)
