"""Section IV-B area reproduction.

Paper: "Fletcher et al. report 0.47 mm2 area for the ORAM controller in
32nm.  Using CACTI 6.5, we measure the 8KB buffer area to be less than
0.42 mm2 in the same technology.  Therefore, we estimate that the overall
area overhead of an SDIMM buffer chip is less than 1 mm2."
"""

from repro.config import SdimmConfig
from repro.energy.area import (
    oram_controller_area_mm2,
    sdimm_buffer_area_mm2,
    sram_area_mm2,
)

from _harness import emit


def test_buffer_area(benchmark):
    def compute():
        return {
            "ORAM controller": oram_controller_area_mm2(32),
            "8KB buffer SRAM": sram_area_mm2(8 * 1024, 32),
            "SDIMM buffer total": sdimm_buffer_area_mm2(SdimmConfig(), 32),
        }

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit("")
    emit("=" * 72)
    emit("SDIMM buffer chip area at 32 nm (mm^2)")
    emit("=" * 72)
    paper = {"ORAM controller": "0.47", "8KB buffer SRAM": "<0.42",
             "SDIMM buffer total": "<1.0"}
    for key, value in table.items():
        emit(f"  {key:20s} {value:6.3f}   (paper: {paper[key]})")

    assert table["ORAM controller"] == 0.47
    assert table["8KB buffer SRAM"] <= 0.42
    assert table["SDIMM buffer total"] < 1.0


def test_area_scaling(benchmark):
    """Extension: bigger stashes remain affordable on the buffer chip."""
    def compute():
        return {capacity: sram_area_mm2(capacity * 1024, 32)
                for capacity in (8, 16, 32, 64)}

    areas = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("  SRAM area vs capacity: " +
         "  ".join(f"{capacity}KB:{area:.2f}"
                   for capacity, area in areas.items()))
    assert areas[64] < 4.0
