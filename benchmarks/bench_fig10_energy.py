"""Figure 10 reproduction: memory energy overhead vs a non-secure baseline.

Paper: "Compared to Freecursive, SPLIT-2 and INDEP-SPLIT improve memory
energy efficiency by 2.4x and 2.5x, respectively" (single- and
double-channel best designs, combining on-DIMM I/O savings with the
Section III-E low-power rank technique).
"""

import pytest

from repro.config import DesignPoint, table2_config
from repro.energy.dram_power import DramEnergyModel
from repro.sim.stats import geometric_mean

from _harness import WORKLOADS, emit, print_header, run_cached


def energy_of(design, workload, channels):
    config = table2_config(design, channels=channels)
    result = run_cached(design, workload, channels)
    model = DramEnergyModel(config.power, config.timing,
                            config.organization,
                            config.cpu.cpu_cycles_per_mem_cycle)
    return model.report(result)


@pytest.mark.parametrize("channels,sdimm_design,paper_factor", [
    (1, DesignPoint.SPLIT_2, 2.4),
    (2, DesignPoint.INDEP_SPLIT, 2.5),
])
def test_fig10_energy(benchmark, channels, sdimm_design, paper_factor):
    def sweep():
        rows = {}
        for workload in WORKLOADS:
            nonsecure = energy_of(DesignPoint.NONSECURE, workload, channels)
            freecursive = energy_of(DesignPoint.FREECURSIVE, workload,
                                    channels)
            sdimm = energy_of(sdimm_design, workload, channels)
            rows[workload] = (
                freecursive.normalized_to(nonsecure),
                sdimm.normalized_to(nonsecure),
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header(f"Figure 10 ({channels}-channel): memory energy overhead "
                 f"normalized to non-secure",
                 ["freec", sdimm_design.value[:7]])
    for workload, (freecursive, sdimm) in sorted(rows.items()):
        emit(f"  {workload:12s} {freecursive:6.1f} {sdimm:7.1f}")
    fc_mean = geometric_mean([f for f, _ in rows.values()])
    sd_mean = geometric_mean([s for _, s in rows.values()])
    improvement = fc_mean / sd_mean
    emit(f"  {'geomean':12s} {fc_mean:6.1f} {sd_mean:7.1f}")
    emit(f"  energy improvement over Freecursive: {improvement:.2f}x "
         f"(paper: {paper_factor}x)")

    assert improvement > 1.4, "SDIMM must clearly improve memory energy"


def test_energy_breakdown_story(benchmark):
    """The mechanism behind Figure 10: I/O moves on-DIMM and background
    power drops with the low-power rank layout."""
    def compute():
        freecursive = energy_of(DesignPoint.FREECURSIVE, WORKLOADS[0], 1)
        sdimm = energy_of(DesignPoint.SPLIT_2, WORKLOADS[0], 1)
        return freecursive, sdimm

    freecursive, sdimm = benchmark.pedantic(compute, rounds=1, iterations=1)
    emit("")
    emit("  Energy breakdown (pJ), first workload, 1 channel:")
    emit(f"  {'component':16s} {'freecursive':>14s} {'split-2':>14s}")
    for key in ("activate_pj", "read_write_pj", "refresh_pj",
                "background_pj", "io_pj", "total_pj"):
        emit(f"  {key:16s} {freecursive.as_dict()[key]:14.3e} "
             f"{sdimm.as_dict()[key]:14.3e}")
    assert sdimm.io_pj < freecursive.io_pj
    assert sdimm.background_pj < freecursive.background_pj
