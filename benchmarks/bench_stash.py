"""Stash-occupancy statistics: why Z = 4 is safe (Section IV-C's premise).

The transfer-queue analysis leans on "prior work has already shown that
the probability of [stash overflow] is extremely small for Z >= 4".  This
bench measures peak stash occupancy empirically across bucket fan-outs:
Z = 4 keeps the stash tiny, smaller Z degrades sharply — the known Path
ORAM result, reproduced on this implementation.
"""

from repro.oram.path_oram import Op, PathOram
from repro.utils.rng import DeterministicRng

from _harness import emit

ACCESSES = 4000
LEVELS = 11


def measure_peak_stash(z: int, seed: int = 9) -> int:
    # N = 3 * leaves: ~38% of the slots at Z=4 but 75% at Z=2 — the load
    # regime where small fan-outs visibly lose eviction headroom.
    # Populate the whole working set first so the tree carries its full
    # load, then measure stash pressure under steady random accesses.
    working_set = 3 << (LEVELS - 1)
    oram = PathOram(levels=LEVELS, blocks_per_bucket=z, block_bytes=16,
                    stash_capacity=1_000_000,
                    rng=DeterministicRng(seed, f"stash-z{z}"),
                    background_eviction=False)
    for address in range(working_set):
        oram.access(address, Op.WRITE, bytes(16))
    oram.stash.peak_occupancy = len(oram.stash)
    rng = DeterministicRng(seed, "addresses")
    for _ in range(ACCESSES):
        oram.access(rng.randrange(working_set), Op.WRITE, bytes(16))
    return oram.stash.peak_occupancy


def test_stash_occupancy_vs_z(benchmark):
    def sweep():
        return {z: measure_peak_stash(z) for z in (2, 3, 4, 5)}

    peaks = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("")
    emit("=" * 72)
    emit(f"Peak stash occupancy over {ACCESSES} accesses "
         f"({LEVELS}-level tree, half-loaded)")
    emit("=" * 72)
    for z, peak in peaks.items():
        emit(f"  Z = {z}: peak {peak:5d} blocks")
    emit("  (prior work the paper cites: overflow probability is "
         "negligible for Z >= 4)")

    assert peaks[4] < 200, "Z=4 must stay within the paper's 200-slot stash"
    assert peaks[2] > 2 * peaks[4], "Z=2 must visibly degrade"
    assert peaks[5] <= peaks[3]


def test_stash_tail_distribution(benchmark):
    """Occupancy samples for Z=4: the tail must die off fast."""
    def sample():
        working_set = 3 << (LEVELS - 1)
        oram = PathOram(levels=LEVELS, blocks_per_bucket=4, block_bytes=16,
                        stash_capacity=10_000,
                        rng=DeterministicRng(3, "tail"),
                        background_eviction=False)
        for address in range(working_set):
            oram.access(address, Op.WRITE, bytes(16))
        rng = DeterministicRng(3, "tail-addresses")
        samples = []
        for _ in range(ACCESSES):
            oram.access(rng.randrange(working_set), Op.WRITE, bytes(16))
            samples.append(len(oram.stash))
        return samples

    samples = benchmark.pedantic(sample, rounds=1, iterations=1)
    mean = sum(samples) / len(samples)
    over_50 = sum(1 for value in samples if value > 50) / len(samples)
    emit(f"  Z=4 steady state (full load): mean occupancy {mean:.1f}, "
         f"P(occupancy > 50) = {over_50:.4f}")
    assert mean < 40
    assert over_50 < 0.02
