"""Benchmark-suite glue: dump the regenerated paper tables at the end.

pytest captures per-test stdout, so the reproduction tables built by
``_harness.emit`` are echoed once more in the terminal summary (which is
never captured) and persisted to ``benchmarks/results``.
"""

import os

import _harness


def pytest_terminal_summary(terminalreporter):
    if not _harness.EMITTED_LINES:
        return
    terminalreporter.section("regenerated paper tables")
    for line in _harness.EMITTED_LINES:
        terminalreporter.write_line(line)
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, "reproduction_tables.txt")
    with open(path, "w") as handle:
        handle.write("\n".join(_harness.EMITTED_LINES) + "\n")
    terminalreporter.write_line(f"(tables saved to {path})")
