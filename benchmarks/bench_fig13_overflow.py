"""Figure 13 reproduction: transfer-queue overflow analysis.

Figure 13a: probability a transfer queue of 16/64/256/1024 entries has
been exceeded after up to 800K steps of the undrained random walk (paper
points: ~97% for 16 at 100K; 91% / 70% / 10% for 64 / 256 / 1024 at 800K).

Figure 13b: M/M/1/K overflow probability when an arriving block is
drained with probability p — "even a small queue has a very small
overflow rate if we occasionally service an incoming block".
"""

import os

from repro.analysis.queueing import transfer_queue_overflow_probability
from repro.analysis.random_walk import (
    displacement_curve,
    displacement_exceedance_probability,
    first_passage_overflow_probability,
)

from _harness import emit

#: Figure 13a's full 800K-step x-axis; reduce via env for quick runs.
STEPS = int(os.environ.get("REPRO_WALK_STEPS", "800000"))
BUFFER_SIZES = (16, 64, 256, 1024)
DRAIN_PROBABILITIES = (0.01, 0.02, 0.05, 0.1, 0.2)
QUEUE_CAPACITIES = (4, 8, 16, 32, 64)


def test_fig13a_random_walk(benchmark):
    def compute():
        return {size: displacement_exceedance_probability(size, STEPS)
                for size in BUFFER_SIZES}

    final = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit("")
    emit("=" * 72)
    emit(f"Figure 13a: P(queue displacement > size) after {STEPS:,} steps")
    emit("=" * 72)
    emit("  size   P(exceeded)   paper@800K")
    paper = {16: ">0.99", 64: "0.91", 256: "0.70", 1024: "0.10"}
    for size in BUFFER_SIZES:
        emit(f"  {size:5d}   {final[size]:10.3f}   {paper[size]:>9s}")

    curve = displacement_curve(64, STEPS, points=8)
    emit("  64-entry curve: " +
         " ".join(f"{step // 1000}K:{probability:.2f}"
                  for step, probability in curve))
    from repro.report import line_chart
    emit("")
    emit(line_chart(
        "  Figure 13a curves (x: steps, y: P(exceeded))",
        {str(size): [(0, 0.0)] + displacement_curve(size, STEPS, points=10)
         for size in BUFFER_SIZES}))

    assert final[16] > 0.9
    assert final[16] > final[64] > final[256] > final[1024]
    if STEPS >= 800_000:
        assert abs(final[64] - 0.91) < 0.05
        assert abs(final[256] - 0.70) < 0.06
        assert abs(final[1024] - 0.10) < 0.05


def test_fig13a_first_passage_bound(benchmark):
    """The stricter ever-overflowed metric upper-bounds the figure."""
    steps = min(STEPS, 100_000)

    def compute():
        return first_passage_overflow_probability(16, steps)

    ever = benchmark.pedantic(compute, rounds=1, iterations=1)
    current = displacement_exceedance_probability(16, steps)
    emit(f"  first-passage P(16-entry queue ever overflowed by "
         f"{steps:,} steps) = {ever:.4f} >= displacement {current:.4f}")
    assert ever >= current


def test_fig13b_mm1k(benchmark):
    def compute():
        table = {}
        for capacity in QUEUE_CAPACITIES:
            table[capacity] = [
                transfer_queue_overflow_probability(p, capacity)
                for p in DRAIN_PROBABILITIES
            ]
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit("")
    emit("=" * 72)
    emit("Figure 13b: M/M/1/K overflow probability vs drain probability p")
    emit("=" * 72)
    emit("  K \\ p   " + "  ".join(f"{p:8.2f}" for p in DRAIN_PROBABILITIES))
    for capacity in QUEUE_CAPACITIES:
        emit(f"  {capacity:5d}   " +
             "  ".join(f"{value:8.2e}" for value in table[capacity]))

    # the paper's conclusion: modest p + modest K => negligible overflow
    assert table[64][2] < 1e-5          # K=64, p=0.05
    assert table[4][0] > table[64][0]   # larger queues overflow less
    assert table[16][0] > table[16][-1]  # more draining overflows less
