"""Figure 8 reproduction: single-channel SDIMM designs vs Freecursive.

Paper: "For the single-channel memory, with caching the first few layers
of ORAM, these approaches reduce execution time by 32% and 33.5% ...
Without the help of ORAM caching, SDIMM-based systems reduce execution
time by around 35.7%."
"""

import pytest

from repro.config import DesignPoint
from repro.sim.stats import geometric_mean

from _harness import WORKLOADS, emit, print_header, run_cached

DESIGNS = (DesignPoint.INDEP_2, DesignPoint.SPLIT_2)


@pytest.mark.parametrize("cache_enabled,paper_note", [
    (True, "paper: INDEP-2 -32%, SPLIT-2 -33.5%"),
    (False, "paper: ~-35.7% without ORAM caching"),
])
def test_fig8_single_channel(benchmark, cache_enabled, paper_note):
    def sweep():
        rows = {}
        for workload in WORKLOADS:
            baseline = run_cached(DesignPoint.FREECURSIVE, workload, 1,
                                  cache_enabled)
            rows[workload] = [
                run_cached(design, workload, 1,
                           cache_enabled).normalized_time(baseline)
                for design in DESIGNS
            ]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    cache_label = "with" if cache_enabled else "without"
    print_header(f"Figure 8 (1 channel, {cache_label} ORAM cache): "
                 f"normalized execution time vs Freecursive",
                 [design.value for design in DESIGNS])
    for workload, values in sorted(rows.items()):
        cells = " ".join(f"{value:7.3f}" for value in values)
        emit(f"  {workload:12s} {cells}")
    means = [geometric_mean([rows[w][index] for w in rows])
             for index in range(len(DESIGNS))]
    emit(f"  {'geomean':12s} " +
         " ".join(f"{mean:7.3f}" for mean in means))
    emit(f"  ({paper_note})")
    from repro.report import bar_chart
    emit("")
    emit(bar_chart("  normalized execution time (geomean; | = baseline)",
                   list(zip((design.value for design in DESIGNS), means)),
                   reference=1.0))

    # shape: both designs beat the baseline on average
    assert all(mean < 0.95 for mean in means)
