"""The Section III-E motivation, measured: faster channels vs power.

"The performance of the ORAM-based memory system depends on available
bandwidth.  One way to improve bandwidth is to increase memory channel
clock frequency.  However, DRAM chips consume more background power when
frequency is increased." — this bench quantifies both halves by running
the same designs on DDR3-1600 and the DDR4-2400 extension preset, then
shows the low-power rank technique recovering the background cost.
"""

import dataclasses

from repro.config import DesignPoint, DramTiming, ddr4_timing, table2_config
from repro.energy.dram_power import DramEnergyModel
from repro.sim.system import run_simulation

from _harness import TRACE_LENGTH, WORKLOADS, emit

WORKLOAD = WORKLOADS[0]


def run_grade(design, timing, label):
    config = table2_config(design, channels=1)
    config = dataclasses.replace(config, timing=timing)
    config.validate()
    result = run_simulation(config, WORKLOAD,
                            trace_length=TRACE_LENGTH // 2)
    model = DramEnergyModel(config.power, config.timing,
                            config.organization,
                            config.cpu.cpu_cycles_per_mem_cycle)
    energy = model.report(result)
    wall_ns = result.execution_cycles * (timing.tck_ns / 2)
    return {
        "label": label,
        "cycles": result.execution_cycles,
        "wall_ns": wall_ns,
        "background_pj": energy.background_pj,
        "total_pj": energy.total_pj,
    }


def test_frequency_vs_power(benchmark):
    def sweep():
        rows = []
        for design in (DesignPoint.FREECURSIVE, DesignPoint.INDEP_2):
            for timing, grade in ((DramTiming(), "DDR3-1600"),
                                  (ddr4_timing(), "DDR4-2400")):
                row = run_grade(design, timing, f"{design.value}/{grade}")
                rows.append(row)
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("")
    emit("=" * 72)
    emit("Channel frequency vs power (Section III-E motivation)")
    emit("=" * 72)
    emit(f"  {'configuration':24s} {'cycles':>12s} {'wall us':>9s} "
         f"{'bg uJ':>8s} {'total uJ':>9s}")
    for row in rows:
        emit(f"  {row['label']:24s} {row['cycles']:12,} "
             f"{row['wall_ns'] / 1e3:9.0f} "
             f"{row['background_pj'] / 1e6:8.1f} "
             f"{row['total_pj'] / 1e6:9.1f}")

    by_label = {row["label"]: row for row in rows}
    fc3 = by_label["freecursive/DDR3-1600"]
    fc4 = by_label["freecursive/DDR4-2400"]
    indep3 = by_label["indep-2/DDR3-1600"]
    # DDR4's raw clock advantage is largely cancelled for ORAM path bursts:
    # same-bank-group streaming paces at tCCD_L (6 x 0.833 ns = 5 ns/line,
    # exactly DDR3's 4 x 1.25 ns).  Wall times land near parity.
    ratio = fc4["wall_ns"] / fc3["wall_ns"]
    assert 0.8 < ratio < 1.2, \
        "ORAM bursts should see near-parity across speed grades"
    # the SDIMM design with parked ranks spends far less background energy
    # than the baseline at either speed grade
    assert indep3["background_pj"] < 0.6 * fc3["background_pj"]
    emit("  -> DDR4's clock advantage mostly cancels for same-bank-group "
         "path bursts (tCCD_L pacing); the low-power rank layout, not "
         "frequency, is what cuts the energy.")
