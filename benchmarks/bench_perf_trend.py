"""Record the performance trajectory: ``BENCH_pr8.json`` + the committed
``perf_trajectory.jsonl`` the regression gate compares against.

Four steps, all through the ledger schema (:mod:`repro.obs.ledger`):

1. **Migrate** the schema-1 ``BENCH_pr3.json`` record (kept untouched)
   into ledger records, so the trajectory starts with history instead of
   a single datapoint.
2. **Measure the gate suite** fresh — the same fixed points
   ``perf-gate`` re-measures (:mod:`repro.obs.regress`) — and a
   serial-vs-parallel sweep-scaling record that carries ``cpu_count``
   *in the core*: on a single-core box the recorded speedup is a caveat
   (``single_core_caveat: true``), not a regression, and pretending
   otherwise would poison every future comparison.
3. **Measure the fast-path A/B** — the differential fast-vs-reference
   sweep from :mod:`bench_fastpath` (byte-identity is a hard gate,
   speedup is recorded per point).
4. **Write** the fresh records to ``BENCH_pr8.json`` and (with
   ``--trajectory``) regenerate the committed trajectory file:
   migrated history first, fresh gate + scaling records after, so the
   gate's latest-record-per-point rule baselines on today's code while
   the dashboard still shows the PR3 -> PR8 history.
   (``BENCH_pr7.json`` stays frozen as that PR's artifact.)

Run directly::

    python benchmarks/bench_perf_trend.py \
        --trajectory benchmarks/results/perf_trajectory.jsonl

Under pytest (tier-2 benchmark suite) the module contributes one smoke
test exercising migrate -> compare on a miniature trajectory.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.config import DesignPoint  # noqa: E402
from repro.obs.ledger import (Ledger, host_clock_s,  # noqa: E402
                              make_record, migrate_bench_pr3,
                              sweep_scaling_core)
from repro.obs.regress import compare_records, gate_records  # noqa: E402
from repro.parallel import (SweepPoint, code_fingerprint,  # noqa: E402
                            run_result_to_dict, run_sweep)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
PR3_PATH = os.path.join(RESULTS_DIR, "BENCH_pr3.json")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_pr8.json")

#: Scaling sweep: same shape as BENCH_pr3's (8 points) so the records
#: are comparable machine-for-machine.
SCALING_DESIGNS = (DesignPoint.FREECURSIVE, DesignPoint.INDEP_2)
SCALING_WORKLOADS = ("mcf", "gromacs", "libquantum", "lbm")


def migrated_records() -> List[Dict[str, object]]:
    """BENCH_pr3.json lifted into ledger records (file left untouched)."""
    with open(PR3_PATH, "r", encoding="utf-8") as handle:
        return migrate_bench_pr3(json.load(handle))


def measure_scaling(trace_length: int, jobs: int) -> Dict[str, object]:
    """One serial-vs-parallel sweep-scaling ledger record."""
    points = [SweepPoint(design, workload, trace_length=trace_length)
              for design in SCALING_DESIGNS
              for workload in SCALING_WORKLOADS]
    started = host_clock_s()
    serial = run_sweep(points, jobs=1, cache=None)
    serial_wall = host_clock_s() - started
    started = host_clock_s()
    parallel = run_sweep(points, jobs=jobs, cache=None)
    parallel_wall = host_clock_s() - started
    identical = ([run_result_to_dict(e.result) for e in serial.results]
                 == [run_result_to_dict(e.result)
                     for e in parallel.results])
    core = sweep_scaling_core(points=len(points), serial_wall_s=serial_wall,
                              parallel_wall_s=parallel_wall, jobs=jobs,
                              results_identical=identical,
                              fingerprint=code_fingerprint())
    core["measure"]["designs"] = [d.value for d in SCALING_DESIGNS]
    core["measure"]["workloads"] = list(SCALING_WORKLOADS)
    return make_record("sweep-scaling", core)


def run_benchmark(jobs: int, out_path: Optional[str],
                  trajectory_path: Optional[str],
                  trace_length: int = 1200,
                  fastpath_repeats: int = 3) -> Dict[str, object]:
    """Measure, record, and (optionally) regenerate the trajectory."""
    from bench_fastpath import measure_fastpath

    fresh = gate_records(jobs=1)
    scaling = measure_scaling(trace_length, jobs)
    fastpath = measure_fastpath(trace_length=trace_length,
                                repeats=fastpath_repeats)
    history = migrated_records()

    # the fresh suite must agree with itself before it becomes anyone's
    # baseline; compare against the migrated history for the report
    self_check = compare_records(fresh, fresh)
    against_history = compare_records(history, fresh)

    payload = {
        "benchmark": "pr8-perf-trend",
        "schema": 2,                     # ledger record schema
        "records": fresh + [scaling],
        "fastpath": fastpath,
        "gate_self_consistent": self_check.ok,
        "vs_pr3": {
            "ok": against_history.ok,
            "findings": [finding.describe()
                         for finding in against_history.findings],
        },
    }
    if out_path:
        os.makedirs(os.path.dirname(os.path.abspath(out_path)),
                    exist_ok=True)
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if trajectory_path:
        try:
            os.remove(trajectory_path)
        except OSError:
            pass
        ledger = Ledger(trajectory_path)
        ledger.append_all(history)
        ledger.append_all(fresh)
        ledger.append(scaling)
    return payload


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="record the performance trajectory (ledger schema)")
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--trace-length", type=int, default=1200)
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="FILE",
                        help=f"JSON record path (default {DEFAULT_OUT})")
    parser.add_argument("--trajectory", default=None, metavar="FILE",
                        help="regenerate this committed trajectory JSONL "
                             "(migrated history + fresh records)")
    args = parser.parse_args(argv)

    payload = run_benchmark(args.jobs, args.out, args.trajectory,
                            trace_length=args.trace_length)
    scaling = payload["records"][-1]["core"]["measure"]
    print(f"gate points          {len(payload['records']) - 1}")
    for record in payload["records"][:-1]:
        measure = record["core"]["measure"]
        point = record["core"]["point"]
        print(f"  {point['design']:12s} {measure['execution_cycles']:>12,} "
              f"cycles  {measure['windows']} windows  "
              f"hit={measure['fastpath_hit_rate']:.3f}")
    fastpath = payload["fastpath"]
    print(f"fastpath A/B         "
          f"{'identical' if fastpath['cycles_identical'] else 'DIVERGED'}  "
          f"geomean {fastpath['geomean_speedup']:.2f}x "
          f"(min {fastpath['min_speedup']:.2f}x) vs reference core")
    print(f"cpu_count            {scaling['cpu_count']}"
          + ("  (single-core caveat: speedup is not expected)"
             if scaling["single_core_caveat"] else ""))
    print(f"serial wall          {scaling['serial_wall_s']:.2f} s")
    print(f"parallel wall (x{scaling['jobs']})   "
          f"{scaling['parallel_wall_s']:.2f} s")
    print(f"sweep speedup        {scaling['speedup']:.2f}x")
    print(f"self-consistent      {payload['gate_self_consistent']}")
    print(f"vs PR3               {'ok' if payload['vs_pr3']['ok'] else 'DRIFT'}")
    for line in payload["vs_pr3"]["findings"]:
        print(f"  {line}")
    print(f"wrote {args.out}")
    if args.trajectory:
        print(f"wrote {args.trajectory}")
    if not scaling["results_identical"]:
        print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
        return 1
    if not payload["gate_self_consistent"]:
        print("FAIL: gate suite not self-consistent", file=sys.stderr)
        return 1
    if not fastpath["cycles_identical"]:
        print("FAIL: fast core diverged from the reference core",
              file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# pytest smoke hook (tier-2): migrate -> compare on a tiny trajectory
# ----------------------------------------------------------------------

def test_migrated_history_is_gate_comparable_smoke():
    history = migrated_records()
    assert all(record["kind"] in ("gate", "sweep-scaling")
               for record in history)
    # the migrated records baseline themselves cleanly
    report = compare_records(history, history)
    assert report.ok and report.compared_points == 1


if __name__ == "__main__":
    sys.exit(main())
