"""Table I reproduction: the DDR-compatible SDIMM command encoding.

Regenerates the table row by row from the implementation and
micro-benchmarks the encode/decode hot path (every protocol message
crosses it).
"""

from repro.core.commands import TABLE_I, CommandEncoder, SdimmCommand

from _harness import emit


def test_table1_rows(benchmark):
    encoder = CommandEncoder()

    def regenerate():
        rows = []
        for spec in TABLE_I:
            kind = "long" if spec.is_long else "short"
            mode = "WR" if spec.is_write else "RD"
            cas = f"RAS({spec.ras:#x}) CAS({spec.cas:#x})"
            if spec.extra_cas:
                cas += " CAS(idx)"
            rows.append((spec.command.value, kind, mode, cas))
        return rows

    rows = benchmark(regenerate)

    emit("")
    emit("=" * 72)
    emit("Table I: DETAILS OF COMMANDS USED BY SDIMM")
    emit("=" * 72)
    emit(f"  {'Command':16s} {'Type':6s} {'RD/WR':6s} cmd/addr bus")
    for command, kind, mode, cas in rows:
        emit(f"  {command:16s} {kind:6s} {mode:6s} {cas}")

    # paper-exact spot checks
    by_name = {row[0]: row for row in rows}
    assert by_name["PROBE"][3] == "RAS(0x0) CAS(0x8)"
    assert by_name["FETCH_RESULT"][3] == "RAS(0x0) CAS(0x10)"
    assert by_name["FETCH_STASH"][3] == "RAS(0x0) CAS(0x18) CAS(idx)"
    assert len(rows) == 9


def test_encode_decode_throughput(benchmark):
    """Encode+decode of an ACCESS frame: the per-message protocol cost."""
    encoder = CommandEncoder()
    payload = bytes(64)

    def roundtrip():
        frame = encoder.encode(SdimmCommand.ACCESS, payload)
        return encoder.decode(frame)

    command, decoded, _ = benchmark(roundtrip)
    assert command is SdimmCommand.ACCESS
    assert decoded == payload
