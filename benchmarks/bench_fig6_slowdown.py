"""Figure 6 reproduction: Freecursive slowdown over a non-secure baseline.

Paper: "even with caching 7 levels of ORAM in the memory controller, ORAM,
on average, causes 8.8x and 5.2x performance loss for a single and double
channel memory"; and "each LLC miss translates into 1.4 accessORAM
operations on average".
"""

import pytest

from repro.config import DesignPoint
from repro.sim.stats import geometric_mean

from _harness import WORKLOADS, emit, print_header, run_cached


@pytest.mark.parametrize("channels,paper_slowdown", [(1, 8.8), (2, 5.2)])
def test_fig6_slowdown(benchmark, channels, paper_slowdown):
    def sweep():
        rows = {}
        for workload in WORKLOADS:
            nonsecure = run_cached(DesignPoint.NONSECURE, workload,
                                   channels)
            freecursive = run_cached(DesignPoint.FREECURSIVE, workload,
                                     channels)
            rows[workload] = (
                freecursive.execution_cycles / nonsecure.execution_cycles,
                freecursive.accessorams_per_miss,
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header(f"Figure 6 ({channels}-channel): Freecursive slowdown "
                 f"vs non-secure", ["slow", "ap/ms"])
    for workload, (slowdown, accessorams) in sorted(rows.items()):
        emit(f"  {workload:12s} {slowdown:6.1f} {accessorams:6.2f}")
    mean = geometric_mean([slowdown for slowdown, _ in rows.values()])
    accessoram_mean = sum(apm for _, apm in rows.values()) / len(rows)
    emit(f"  {'geomean':12s} {mean:6.1f}        "
         f"(paper: {paper_slowdown}x)")
    emit(f"  mean accessORAMs per LLC miss: {accessoram_mean:.2f} "
         f"(paper: 1.4)")

    # shape assertions: ORAM costs multiples; 2ch hurts less than 1ch
    assert mean > 3.0
    assert 1.0 < accessoram_mean < 4.0
