"""Differential fast-vs-reference gate: equality first, speedup second.

For each (design, workload) point this runs the simulation twice in
fresh interpreters — once with the macro-event fast path (the default)
and once with ``REPRO_REFERENCE_CORE=1 REPRO_DISABLE_MEMO=1`` (the
readable event-at-a-time core, no memo caches) — and

1. **fails** unless every observable is byte-identical: execution
   cycles, per-phase attribution, channel counters, rank residencies,
   window series, and the SHA-256 of the full trace-event stream
   (``wall`` and ``extras`` are excluded — the hit rate differing is
   the fast path's job);
2. **fails** if the geometric-mean wall-clock speedup falls below
   ``--min-speedup`` (default 2.0) — the CI floor that keeps the fast
   path from silently decaying into a no-op.

The measurement is merged into ``benchmarks/results/BENCH_pr8.json``
under the ``"fastpath"`` key (the rest of that file is written by
``bench_perf_trend.py``), so the committed artifact and the CI artifact
have one shape.

Run directly::

    python benchmarks/bench_fastpath.py --trace-length 1200
"""

from __future__ import annotations

import argparse
import json
import math
import os
import subprocess
import sys
from typing import Dict, List, Optional, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")
DEFAULT_OUT = os.path.join(RESULTS_DIR, "BENCH_pr8.json")

#: The differential suite: every timing-tier design family x two
#: workload personalities (memory-bound and compute-bound).
DIFF_DESIGNS = ("freecursive", "indep-2", "split-2")
DIFF_WORKLOADS = ("mcf", "gromacs")

MIN_SPEEDUP = 2.0

#: Runs one point and prints {digest, wall_s}; wall excludes interpreter
#: startup.  The core toggles are read at import, hence the subprocess.
DRIVER = r"""
import hashlib, json, sys, time

from repro.config import DesignPoint, table2_config
from repro.obs.tracer import CollectingTracer
from repro.sim.system import run_simulation

design, workload, trace_length, repeats = (
    sys.argv[1], sys.argv[2], int(sys.argv[3]), int(sys.argv[4]))
best = None
for _ in range(repeats):
    tracer = CollectingTracer()
    started = time.perf_counter()
    result = run_simulation(table2_config(DesignPoint(design), channels=1),
                            workload, trace_length=trace_length,
                            tracer=tracer, window_cycles=50_000)
    wall = time.perf_counter() - started
    if best is None or wall < best[0]:
        best = (wall, result, tracer)
wall, result, tracer = best
events_sha = hashlib.sha256(json.dumps(
    [(e.kind, e.name, e.category, e.lane, e.start, e.duration,
      sorted(e.args.items())) for e in tracer.events],
    sort_keys=True).encode()).hexdigest()
print(json.dumps({
    "digest": {
        "execution_cycles": result.execution_cycles,
        "miss_count": result.miss_count,
        "accessoram_count": result.accessoram_count,
        "phase_cycles": result.phase_cycles,
        "channel_counters": result.channel_counters,
        "main_bus_lines": result.main_bus_lines,
        "rank_residencies": result.rank_residencies,
        "windows": result.windows,
        "events_sha": events_sha,
    },
    "fastpath_hit_rate": result.extras.get("fastpath_hit_rate", 0.0),
    "wall_s": wall,
}, sort_keys=True))
"""

REFERENCE_ENV = {"REPRO_REFERENCE_CORE": "1", "REPRO_DISABLE_MEMO": "1"}
_CORE_SWITCHES = ("REPRO_REFERENCE_CORE", "REPRO_DISABLE_MEMO",
                  "REPRO_DISABLE_FASTPATH")


def run_point(design: str, workload: str, trace_length: int,
              repeats: int, env_extra: Dict[str, str]) -> Dict[str, object]:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    for switch in _CORE_SWITCHES:
        env.pop(switch, None)
    env.update(env_extra)
    proc = subprocess.run(
        [sys.executable, "-c", DRIVER, design, workload,
         str(trace_length), str(repeats)],
        env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        raise RuntimeError(f"{design}/{workload} driver failed:\n"
                           + proc.stderr[-2000:])
    return json.loads(proc.stdout)


def measure_fastpath(trace_length: int = 1200, repeats: int = 3,
                     designs: Tuple[str, ...] = DIFF_DESIGNS,
                     workloads: Tuple[str, ...] = DIFF_WORKLOADS
                     ) -> Dict[str, object]:
    """The full differential sweep; pure measurement, no gating."""
    points: List[Dict[str, object]] = []
    for design in designs:
        for workload in workloads:
            fast = run_point(design, workload, trace_length, repeats, {})
            reference = run_point(design, workload, trace_length,
                                  max(1, repeats - 1), REFERENCE_ENV)
            points.append({
                "design": design,
                "workload": workload,
                "identical": fast["digest"] == reference["digest"],
                "execution_cycles":
                    fast["digest"]["execution_cycles"],
                "fastpath_hit_rate": fast["fastpath_hit_rate"],
                "fast_wall_s": fast["wall_s"],
                "reference_wall_s": reference["wall_s"],
                "speedup": reference["wall_s"] / fast["wall_s"],
            })
    speedups = [point["speedup"] for point in points]
    return {
        "trace_length": trace_length,
        "repeats": repeats,
        "points": points,
        "cycles_identical": all(point["identical"] for point in points),
        "min_speedup": min(speedups),
        "geomean_speedup": math.exp(
            sum(math.log(value) for value in speedups) / len(speedups)),
    }


def merge_into(out_path: str, fastpath: Dict[str, object]) -> None:
    """Fold the measurement into ``BENCH_pr8.json`` under ``fastpath``."""
    payload: Dict[str, object] = {"benchmark": "pr8-perf-trend",
                                  "schema": 2}
    if os.path.exists(out_path):
        with open(out_path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    payload["fastpath"] = fastpath
    os.makedirs(os.path.dirname(os.path.abspath(out_path)), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="differential fast-vs-reference gate")
    parser.add_argument("--trace-length", type=int, default=1200)
    parser.add_argument("--repeats", type=int, default=3,
                        help="fast-side runs per point (best-of)")
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP,
                        help="geomean wall-clock floor (default "
                             f"{MIN_SPEEDUP}x)")
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="FILE",
                        help=f"merge measurement into (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    fastpath = measure_fastpath(args.trace_length, args.repeats)
    for point in fastpath["points"]:
        print(f"  {point['design']:12s} {point['workload']:10s} "
              f"{'identical' if point['identical'] else 'DIVERGED '} "
              f"hit={point['fastpath_hit_rate']:.3f} "
              f"{point['reference_wall_s'] * 1e3:7.1f} ms -> "
              f"{point['fast_wall_s'] * 1e3:7.1f} ms "
              f"({point['speedup']:.2f}x)")
    print(f"geomean speedup      {fastpath['geomean_speedup']:.2f}x "
          f"(min {fastpath['min_speedup']:.2f}x, "
          f"floor {args.min_speedup:.1f}x)")
    merge_into(args.out, fastpath)
    print(f"wrote {args.out}")

    if not fastpath["cycles_identical"]:
        print("FAIL: fast core diverged from the reference core",
              file=sys.stderr)
        return 1
    if fastpath["geomean_speedup"] < args.min_speedup:
        print(f"FAIL: geomean speedup {fastpath['geomean_speedup']:.2f}x "
              f"below the {args.min_speedup:.1f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
