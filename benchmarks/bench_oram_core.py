"""Microbenchmarks of the core primitives (throughput regression guard).

Not a paper figure: these keep the functional tier honest — a Path ORAM
access, a Freecursive access through the PLB, a Split protocol access with
real crypto, and an encrypted-store round trip.
"""

from repro.config import OramConfig
from repro.core.independent import IndependentProtocol
from repro.core.split import SplitProtocol
from repro.crypto.ctr import CounterModeCipher
from repro.oram.freecursive import FreecursiveOram
from repro.oram.integrity import EncryptedBucketStore
from repro.oram.path_oram import Op, PathOram
from repro.utils.rng import DeterministicRng


def test_path_oram_access(benchmark):
    oram = PathOram(levels=12, blocks_per_bucket=4, block_bytes=64,
                    stash_capacity=200, rng=DeterministicRng(1, "bench"))
    payload = bytes(64)
    counter = iter(range(10**9))

    def access():
        return oram.access(next(counter) % 1000, Op.WRITE, payload)

    benchmark(access)
    assert oram.access_count > 0


def test_freecursive_access(benchmark):
    config = OramConfig(levels=16, cached_levels=3, recursive_posmaps=3,
                        plb_bytes=4096, plb_assoc=4)
    oram = FreecursiveOram(config, DeterministicRng(2, "bench"),
                           data_levels=12)
    counter = iter(range(10**9))

    def access():
        return oram.read(next(counter) % 4096)

    benchmark(access)
    assert oram.frontend.requests > 0


def test_split_protocol_access(benchmark):
    protocol = SplitProtocol(levels=8, ways=2, block_bytes=64,
                             stash_capacity=200)
    payload = bytes(64)
    counter = iter(range(10**9))

    def access():
        protocol.write(next(counter) % 256, payload)

    benchmark(access)
    assert protocol.stashes_aligned()


def test_independent_protocol_access(benchmark):
    protocol = IndependentProtocol(global_levels=10, sdimm_count=2,
                                   block_bytes=64, stash_capacity=200)
    payload = bytes(64)
    counter = iter(range(10**9))

    def access():
        protocol.write(next(counter) % 512, payload)

    benchmark(access)


def test_encrypted_store_roundtrip(benchmark):
    from repro.oram.bucket import Block, Bucket

    store = EncryptedBucketStore(1023, 4, 64, b"0123456789abcdef")
    bucket = Bucket(4, 64)
    bucket.insert(Block(1, 2, bytes(64)))
    counter = iter(range(10**9))

    def roundtrip():
        index = next(counter) % 1023
        store.write(index, bucket)
        return store.read(index)

    result = benchmark(roundtrip)
    assert result.occupancy == 1


def test_counter_mode_block(benchmark):
    cipher = CounterModeCipher(b"0123456789abcdef")
    block = bytes(range(64))
    counter = iter(range(10**9))

    def encrypt():
        return cipher.encrypt(block, 7, next(counter))

    benchmark(encrypt)
