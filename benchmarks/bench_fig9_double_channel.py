"""Figure 9 reproduction: double-channel SDIMM designs vs Freecursive.

Paper: "INDEP-4, SPLIT-4, and INDEP-SPLIT improve performance by 20.3%,
20.4%, and 47.4% on average"; gromacs/omnetpp (high MLP) favour INDEP-4,
GemsFDTD (low MLP) favours SPLIT-4; INDEP-SPLIT "finds the best balance
... in every benchmark".
"""

from repro.config import DesignPoint
from repro.sim.stats import geometric_mean

from _harness import WORKLOADS, emit, print_header, run_cached

DESIGNS = (DesignPoint.INDEP_4, DesignPoint.SPLIT_4,
           DesignPoint.INDEP_SPLIT)


def test_fig9_double_channel(benchmark):
    def sweep():
        rows = {}
        for workload in WORKLOADS:
            baseline = run_cached(DesignPoint.FREECURSIVE, workload, 2)
            rows[workload] = [
                run_cached(design, workload, 2).normalized_time(baseline)
                for design in DESIGNS
            ]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header("Figure 9 (2 channels): normalized execution time "
                 "vs Freecursive", [d.value[:7] for d in DESIGNS])
    for workload, values in sorted(rows.items()):
        cells = " ".join(f"{value:7.3f}" for value in values)
        emit(f"  {workload:12s} {cells}")
    means = {design: geometric_mean([rows[w][index] for w in rows])
             for index, design in enumerate(DESIGNS)}
    emit(f"  {'geomean':12s} " +
         " ".join(f"{means[d]:7.3f}" for d in DESIGNS))
    emit("  (paper: INDEP-4 0.797, SPLIT-4 0.796, INDEP-SPLIT 0.526)")
    from repro.report import bar_chart
    emit("")
    emit(bar_chart("  normalized execution time (geomean; | = baseline)",
                   [(design.value, means[design]) for design in DESIGNS],
                   reference=1.0))

    # shape assertions from the paper's narrative
    assert means[DesignPoint.INDEP_SPLIT] == min(means.values()), \
        "INDEP-SPLIT must be the best design overall"
    high_mlp = [w for w in ("gromacs", "omnetpp") if w in rows]
    for workload in high_mlp:
        indep = rows[workload][0]
        split = rows[workload][1]
        assert indep < split, f"{workload} (high MLP) must favour INDEP-4"
    if "GemsFDTD" in rows:
        assert rows["GemsFDTD"][1] < rows["GemsFDTD"][0], \
            "GemsFDTD (low MLP) must favour SPLIT-4"


def test_fig6_vs_fig9_headline(benchmark):
    """Paper: 'the 5x slowdown in the baseline ... has been halved to 2.6x
    with the INDEP-SPLIT protocol'."""
    def compute():
        baseline_slow = []
        best_slow = []
        for workload in WORKLOADS:
            nonsecure = run_cached(DesignPoint.NONSECURE, workload, 2)
            freecursive = run_cached(DesignPoint.FREECURSIVE, workload, 2)
            combined = run_cached(DesignPoint.INDEP_SPLIT, workload, 2)
            baseline_slow.append(freecursive.execution_cycles /
                                 nonsecure.execution_cycles)
            best_slow.append(combined.execution_cycles /
                             nonsecure.execution_cycles)
        return (geometric_mean(baseline_slow), geometric_mean(best_slow))

    freecursive_slowdown, combined_slowdown = benchmark.pedantic(
        compute, rounds=1, iterations=1)
    emit("")
    emit(f"  Freecursive slowdown vs non-secure (2ch): "
         f"{freecursive_slowdown:.1f}x   (paper: 5.2x)")
    emit(f"  INDEP-SPLIT slowdown vs non-secure (2ch): "
         f"{combined_slowdown:.1f}x   (paper: 2.6x)")
    assert combined_slowdown < freecursive_slowdown
