"""Ablations over the design choices DESIGN.md calls out.

Beyond the paper's figures: how the reproduction responds to the PLB
size, the bucket fanout Z, the PROBE polling interval, and the drain
probability — each a knob the paper fixes but whose direction its
arguments predict.
"""

import dataclasses

from repro.config import DesignPoint, OramConfig, table2_config
from repro.oram.plb import PlbFrontend
from repro.sim.system import run_simulation
from repro.utils.rng import DeterministicRng

from _harness import TRACE_LENGTH, WORKLOADS, emit

WORKLOAD = WORKLOADS[0]


def test_plb_size_ablation(benchmark):
    """Bigger PLBs cut accessORAMs per miss (Freecursive's whole point)."""
    def sweep():
        ratios = {}
        rng = DeterministicRng(3, "plb-ablation")
        addresses = [rng.randrange(1 << 22) for _ in range(4000)]
        for plb_kb in (8, 16, 32, 64, 128):
            config = OramConfig(levels=28, plb_bytes=plb_kb * 1024)
            frontend = PlbFrontend(config)
            for address in addresses:
                frontend.translate(address)
            ratios[plb_kb] = frontend.accesses_per_request
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("")
    emit("  PLB size vs accessORAMs/miss (uniform addresses): " +
         "  ".join(f"{kb}KB:{value:.2f}" for kb, value in ratios.items()))
    values = list(ratios.values())
    assert values == sorted(values, reverse=True), \
        "larger PLBs must never cost more accesses"


def test_bucket_fanout_ablation(benchmark):
    """Larger Z: more lines per bucket, longer paths per level."""
    def sweep():
        cycles = {}
        for z in (2, 4, 6):
            config = table2_config(DesignPoint.FREECURSIVE, channels=1)
            oram = dataclasses.replace(config.oram, blocks_per_bucket=z)
            config = dataclasses.replace(config, oram=oram)
            config.validate()
            result = run_simulation(config, WORKLOAD,
                                    trace_length=TRACE_LENGTH // 2)
            cycles[z] = result.execution_cycles
        return cycles

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("  Z vs Freecursive cycles: " +
         "  ".join(f"Z={z}:{value:,}" for z, value in cycles.items()))
    assert cycles[6] > cycles[2], "bigger buckets must move more data"


def test_probe_interval_ablation(benchmark):
    """Coarser polling adds pure latency to every Independent access."""
    def sweep():
        cycles = {}
        for interval in (8, 64, 256):
            config = table2_config(DesignPoint.INDEP_2, channels=1)
            sdimm = dataclasses.replace(config.sdimm,
                                        probe_interval_mem_cycles=interval)
            config = dataclasses.replace(config, sdimm=sdimm)
            result = run_simulation(config, WORKLOAD,
                                    trace_length=TRACE_LENGTH // 2)
            cycles[interval] = result.execution_cycles
        return cycles

    cycles = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("  PROBE interval vs INDEP-2 cycles: " +
         "  ".join(f"{interval}:{value:,}"
                   for interval, value in cycles.items()))
    assert cycles[256] >= cycles[8], "coarser polling cannot be faster"


def test_window_policy_ablation(benchmark):
    """The EXPERIMENTS.md note-2 hypothesis, tested: relaxing the in-order
    miss window to out-of-order retirement recovers part of INDEP-SPLIT's
    gap to the paper's number."""
    from repro.sim.stats import geometric_mean

    def sweep():
        results = {}
        for policy in ("in-order", "out-of-order"):
            normalized = []
            for workload in WORKLOADS[:3]:
                fc = run_simulation(
                    table2_config(DesignPoint.FREECURSIVE, channels=2),
                    workload, trace_length=TRACE_LENGTH // 2,
                    window_policy=policy)
                combined = run_simulation(
                    table2_config(DesignPoint.INDEP_SPLIT, channels=2),
                    workload, trace_length=TRACE_LENGTH // 2,
                    window_policy=policy)
                normalized.append(combined.execution_cycles /
                                  fc.execution_cycles)
            results[policy] = geometric_mean(normalized)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("  INDEP-SPLIT normalized time by window policy: " +
         "  ".join(f"{policy}:{value:.3f}"
                   for policy, value in results.items()))
    emit("  (paper: 0.526 with their traces; OoO retirement closes part "
         "of the gap)")
    assert results["out-of-order"] < results["in-order"]


def test_subtree_packing_ablation(benchmark):
    """Ren et al.'s subtree packing: taller bands -> better row locality.

    The layout's whole purpose is row-buffer hits on path bursts; packing
    with 1-level bands (no packing) must show a clearly worse hit rate.
    """
    from repro.config import DramOrganization, OramConfig
    from repro.dram.channel import Channel
    from repro.config import DramTiming
    from repro.oram.layout import TreeLayout
    from repro.oram.tree import TreeGeometry
    from repro.utils.rng import DeterministicRng

    def sweep():
        hit_rates = {}
        geometry = TreeGeometry(20)
        oram = OramConfig(levels=20, cached_levels=4)
        rng = DeterministicRng(11, "packing")
        leaves = [rng.random_leaf(geometry.leaf_count) for _ in range(200)]
        for band in (1, 2, 4):
            layout = TreeLayout(geometry, oram, DramOrganization(),
                                channels=1, subtree_levels=band)
            channel = Channel(DramTiming(), DramOrganization(), scale=1)
            clock = 0
            for leaf in leaves:
                for _, address, count in layout.path_runs(leaf, 4):
                    timing = channel.schedule_run(address, count, False,
                                                  clock)
                    clock = timing.data_end
            hit_rates[band] = channel.counters.row_hit_rate
        return hit_rates

    hit_rates = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("  subtree packing band vs row-hit rate: " +
         "  ".join(f"{band}-level:{rate:.2f}"
                   for band, rate in hit_rates.items()))
    assert hit_rates[4] > hit_rates[1] + 0.05, \
        "packing must buy row locality"
    assert hit_rates[2] > hit_rates[1]


def test_address_interleaving_ablation(benchmark):
    """Non-secure baseline: row-interleaved vs bank-interleaved mapping."""
    from repro.config import DramOrganization, DramTiming
    from repro.dram.address import AddressMapper
    from repro.dram.channel import Channel

    def sweep():
        results = {}
        for scheme in ("row:rank:bank:col", "row:col:rank:bank"):
            mapper = AddressMapper(DramOrganization(), 64, scheme)
            channel = Channel(DramTiming(), DramOrganization(), scale=1)
            clock = 0
            for line in range(0, 4000):   # a sequential stream
                timing = channel.schedule_access(mapper.decode(line),
                                                 False, clock)
                clock = timing.data_end
            results[scheme] = (channel.counters.row_hit_rate, clock)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("  interleaving vs (row-hit rate, makespan): " +
         "  ".join(f"{scheme}:({rate:.2f},{clock:,})"
                   for scheme, (rate, clock) in results.items()))
    sequential_friendly = results["row:rank:bank:col"]
    bank_spread = results["row:col:rank:bank"]
    assert sequential_friendly[0] > bank_spread[0], \
        "column-fastest mapping must win row hits on streams"


def test_integrity_scheme_ablation(benchmark):
    """PMMAC (the paper's choice) vs a Merkle tree: traffic and time.

    Section II-B names both; PMMAC wins on traffic (zero extra lines) at
    the cost of trusted counter state.  The functional micro-comparison
    shows the Merkle store's hash-path work too.
    """
    import time

    from repro.config import OramConfig
    from repro.oram.integrity import EncryptedBucketStore
    from repro.oram.merkle import (
        MerkleBucketStore,
        integrity_traffic_comparison,
    )
    from repro.oram.path_oram import Op, PathOram
    from repro.utils.rng import DeterministicRng

    def sweep():
        traffic = integrity_traffic_comparison(
            OramConfig(levels=28, cached_levels=7), 7)
        timings = {}
        for name, store in (
                ("pmmac", EncryptedBucketStore(127, 4, 16,
                                               b"ablation key 16b")),
                ("merkle", MerkleBucketStore(7, 4, 16,
                                             b"ablation key 16b"))):
            oram = PathOram(levels=7, blocks_per_bucket=4, block_bytes=16,
                            stash_capacity=200,
                            rng=DeterministicRng(5, name), store=store)
            begin = time.perf_counter()
            for address in range(150):
                oram.access(address % 40, Op.WRITE, bytes(16))
            timings[name] = time.perf_counter() - begin
        return traffic, timings

    traffic, timings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("  integrity traffic per access: PMMAC "
         f"+{traffic['pmmac_extra_lines']:.1f} lines, Merkle "
         f"+{traffic['merkle_extra_lines']:.1f} lines "
         f"({traffic['merkle_overhead_fraction']:.1%} of baseline)")
    emit(f"  functional cost (150 accesses): pmmac {timings['pmmac']:.3f}s"
         f", merkle {timings['merkle']:.3f}s")
    assert traffic["pmmac_extra_lines"] == 0.0
    assert 0 < traffic["merkle_overhead_fraction"] < 0.1


def test_drain_probability_ablation(benchmark):
    """Higher p spends more dummy accesses (the Figure 13b trade-off)."""
    def sweep():
        drains = {}
        for p in (0.0, 0.05, 0.3):
            config = table2_config(DesignPoint.INDEP_2, channels=1)
            sdimm = dataclasses.replace(config.sdimm, drain_probability=p)
            config = dataclasses.replace(config, sdimm=sdimm)
            result = run_simulation(config, WORKLOAD,
                                    trace_length=TRACE_LENGTH // 2)
            drains[p] = result.drain_accesses
        return drains

    drains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("  drain probability vs dummy accesses: " +
         "  ".join(f"p={p}:{count}" for p, count in drains.items()))
    assert drains[0.0] == 0
    assert drains[0.3] > drains[0.05]
