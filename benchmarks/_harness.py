"""Shared machinery for the reproduction benchmarks.

Every figure/table of the paper has one bench module.  They share:

* a process-wide cache of simulation runs, so Figure 6's Freecursive runs
  are reused by Figures 8-10 instead of re-simulated;
* environment knobs —

  - ``REPRO_TRACE_LENGTH`` (default 4000): records per trace.  The paper
    uses 1M warm-up + 1M measured; raise this for higher fidelity at
    proportional runtime (pure-Python simulator).
  - ``REPRO_WORKLOADS`` (default: all ten): comma-separated subset.

* ``emit`` — prints through pytest's capture so the regenerated tables
  always land in the console / tee'd log.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Iterable, Tuple

from repro.config import DesignPoint, SystemConfig, table2_config
from repro.sim.stats import RunResult, geometric_mean
from repro.sim.system import run_simulation
from repro.workloads.spec import profile_names

TRACE_LENGTH = int(os.environ.get("REPRO_TRACE_LENGTH", "4000"))

_workload_env = os.environ.get("REPRO_WORKLOADS", "")
WORKLOADS: Tuple[str, ...] = (tuple(name for name in _workload_env.split(",")
                                    if name)
                              or profile_names())

_RUN_CACHE: Dict[tuple, RunResult] = {}

#: Reproduction tables accumulate here; the benchmarks/conftest.py
#: terminal-summary hook prints them after the pytest-benchmark table
#: (terminal summary is never captured) and writes them to
#: benchmarks/results/reproduction_tables.txt.
EMITTED_LINES = []


def emit(text: str = "") -> None:
    """Record one line of a regenerated paper table."""
    EMITTED_LINES.append(text)
    print(text)


def run_cached(design: DesignPoint, workload: str, channels: int = 1,
               oram_cache_enabled: bool = True) -> RunResult:
    """Run (or fetch) one simulation from the shared benchmark cache."""
    key = (design, workload, channels, oram_cache_enabled, TRACE_LENGTH)
    if key not in _RUN_CACHE:
        config = table2_config(design, channels=channels,
                               oram_cache_enabled=oram_cache_enabled)
        _RUN_CACHE[key] = run_simulation(config, workload,
                                         trace_length=TRACE_LENGTH)
    return _RUN_CACHE[key]


def normalized_row(workload: str, baseline: RunResult,
                   results: Iterable[RunResult]) -> str:
    cells = " ".join(f"{result.normalized_time(baseline):6.3f}"
                     for result in results)
    return f"  {workload:12s} {cells}"


def print_header(title: str, columns: Iterable[str]) -> None:
    emit("")
    emit("=" * 72)
    emit(title)
    emit("=" * 72)
    emit("  " + "workload".ljust(12) + " " +
         " ".join(f"{column:>6s}" for column in columns))


def summarize(name: str, values) -> float:
    mean = geometric_mean(list(values))
    emit(f"  {'geomean':12s} {mean:6.3f}   ({name})")
    return mean
