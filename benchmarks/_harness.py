"""Shared machinery for the reproduction benchmarks.

Every figure/table of the paper has one bench module.  They share:

* a two-level cache of simulation runs: an in-process dict (so Figure 6's
  Freecursive runs are reused by Figures 8-10 within one pytest run) backed
  by the persistent content-addressed disk cache from
  :mod:`repro.parallel.cache`, so *repeated* ``pytest benchmarks``
  invocations reuse runs across processes.  The disk key includes the
  ``repro`` source fingerprint, so any code change invalidates every
  entry (stale ones are pruned on first use);
* environment knobs —

  - ``REPRO_TRACE_LENGTH`` (default 4000): records per trace.  The paper
    uses 1M warm-up + 1M measured; raise this for higher fidelity at
    proportional runtime (pure-Python simulator).
  - ``REPRO_WORKLOADS`` (default: all ten): comma-separated subset.
  - ``REPRO_CACHE_DIR``: disk-cache location (default
    ``benchmarks/results/.runcache``); ``REPRO_NO_DISK_CACHE=1``
    disables the disk layer entirely.

* ``emit`` — prints through pytest's capture so the regenerated tables
  always land in the console / tee'd log.
"""

from __future__ import annotations

import os
import sys
from typing import Dict, Iterable, Optional, Tuple

from repro.config import DesignPoint, SystemConfig, table2_config
from repro.parallel.cache import RunCache
from repro.parallel.fingerprint import code_fingerprint
from repro.sim.stats import RunResult, geometric_mean
from repro.sim.system import run_simulation
from repro.workloads.spec import profile_names

TRACE_LENGTH = int(os.environ.get("REPRO_TRACE_LENGTH", "4000"))

_workload_env = os.environ.get("REPRO_WORKLOADS", "")
WORKLOADS: Tuple[str, ...] = (tuple(name for name in _workload_env.split(",")
                                    if name)
                              or profile_names())

_RUN_CACHE: Dict[tuple, RunResult] = {}

_DISK_CACHE: Optional[RunCache] = None
_DISK_CACHE_READY = False


def disk_cache() -> Optional[RunCache]:
    """The shared persistent cache (pruned of stale entries on first use)."""
    global _DISK_CACHE, _DISK_CACHE_READY
    if _DISK_CACHE_READY:
        return _DISK_CACHE
    _DISK_CACHE_READY = True
    if os.environ.get("REPRO_NO_DISK_CACHE") == "1":
        return None
    directory = os.environ.get("REPRO_CACHE_DIR") or os.path.join(
        os.path.dirname(__file__), "results", ".runcache")
    _DISK_CACHE = RunCache(directory)
    # explicit invalidation: entries from older code are unreachable
    # anyway (the fingerprint is in the key) — reclaim them now
    _DISK_CACHE.prune_stale(code_fingerprint())
    return _DISK_CACHE

#: Reproduction tables accumulate here; the benchmarks/conftest.py
#: terminal-summary hook prints them after the pytest-benchmark table
#: (terminal summary is never captured) and writes them to
#: benchmarks/results/reproduction_tables.txt.
EMITTED_LINES = []


def emit(text: str = "") -> None:
    """Record one line of a regenerated paper table."""
    EMITTED_LINES.append(text)
    print(text)


def _ledger_append(config: SystemConfig, design: DesignPoint,
                   workload: str, channels: int, result: RunResult,
                   wall_ms: float, from_cache: bool) -> None:
    """Append one bench record when ``REPRO_LEDGER`` names a file.

    Resolution (and the ``REPRO_NO_LEDGER`` kill switch) live in
    :func:`repro.obs.ledger.resolve_ledger`; without the env var this is
    a no-op, so ordinary benchmark runs stay write-free.
    """
    from repro.obs.ledger import (config_digest_hex, make_record,
                                  resolve_ledger, simulation_core)

    ledger = resolve_ledger()
    if ledger is None:
        return
    core = simulation_core(design.value, workload, result,
                           config_digest_hex(config), channels=channels,
                           trace_length=TRACE_LENGTH)
    ledger.append(make_record("bench", core, wall_ms=wall_ms,
                              from_cache=from_cache))


def run_cached(design: DesignPoint, workload: str, channels: int = 1,
               oram_cache_enabled: bool = True) -> RunResult:
    """Run (or fetch) one simulation from the shared benchmark cache.

    Lookup order: in-process dict, then the persistent disk cache, then a
    real simulation (whose result is written back to both layers).  When
    ``REPRO_LEDGER`` is set, every disk-cache miss *and* hit appends one
    performance-ledger record (hits with ``from_cache: true``) — the
    in-process layer stays silent, it is a per-pytest-session memo.
    """
    from repro.obs.ledger import host_clock_s

    key = (design, workload, channels, oram_cache_enabled, TRACE_LENGTH)
    cached = _RUN_CACHE.get(key)
    if cached is not None:
        return cached
    config = table2_config(design, channels=channels,
                           oram_cache_enabled=oram_cache_enabled)
    store = disk_cache()
    disk_key = None
    started = host_clock_s()
    if store is not None:
        disk_key = store.key_for(config, workload, TRACE_LENGTH)
        entry = store.get(disk_key)
        if entry is not None:
            _RUN_CACHE[key] = entry.result
            _ledger_append(config, design, workload, channels,
                           entry.result,
                           (host_clock_s() - started) * 1000.0, True)
            return entry.result
    result = run_simulation(config, workload, trace_length=TRACE_LENGTH)
    wall_ms = (host_clock_s() - started) * 1000.0
    if store is not None and disk_key is not None:
        store.put(disk_key, result)
    _RUN_CACHE[key] = result
    _ledger_append(config, design, workload, channels, result, wall_ms,
                   False)
    return result


def normalized_row(workload: str, baseline: RunResult,
                   results: Iterable[RunResult]) -> str:
    cells = " ".join(f"{result.normalized_time(baseline):6.3f}"
                     for result in results)
    return f"  {workload:12s} {cells}"


def print_header(title: str, columns: Iterable[str]) -> None:
    emit("")
    emit("=" * 72)
    emit(title)
    emit("=" * 72)
    emit("  " + "workload".ljust(12) + " " +
         " ".join(f"{column:>6s}" for column in columns))


def summarize(name: str, values) -> float:
    mean = geometric_mean(list(values))
    emit(f"  {'geomean':12s} {mean:6.3f}   ({name})")
    return mean
