"""Figure 7 reproduction: the SDIMM design space, structurally.

Figure 7 enumerates the five evaluated organizations: (a) INDEP-2,
(b) SPLIT-2, (c) INDEP-4, (d) SPLIT-4, (e) INDEP-SPLIT.  This bench
regenerates the diagram from the configuration/back-end layer and checks
each design's structural invariants: SDIMM count, tree partitioning, and
which fraction of the ORAM each SDIMM carries.
"""

from repro.config import DesignPoint, table2_config
from repro.sim.backends import (
    IndependentBackend,
    IndepSplitBackend,
    SplitBackend,
)
from repro.sim.system import build_backend

from _harness import emit

LAYOUTS = [
    ("(a) INDEP-2", DesignPoint.INDEP_2, 1),
    ("(b) SPLIT-2", DesignPoint.SPLIT_2, 1),
    ("(c) INDEP-4", DesignPoint.INDEP_4, 2),
    ("(d) SPLIT-4", DesignPoint.SPLIT_4, 2),
    ("(e) INDEP-SPLIT", DesignPoint.INDEP_SPLIT, 2),
]


def describe(design, channels):
    config = table2_config(design, channels=channels)
    backend = build_backend(config)
    count = config.sdimm_count
    if isinstance(backend, IndependentBackend):
        share = f"1/{count} ORAM each (whole subtrees)"
        local = backend.devices[0].geometry.levels
    elif isinstance(backend, SplitBackend):
        share = f"1/{count} of *every bucket* each (bit slices)"
        local = backend.devices[0].geometry.levels
    elif isinstance(backend, IndepSplitBackend):
        groups = len(backend.groups)
        ways = backend.groups[0].ways
        share = (f"{groups} groups x {ways}-way split: "
                 f"1/{groups} ORAM per group, sliced inside")
        local = backend.devices[0].geometry.levels
    else:
        raise AssertionError(design)
    return config, backend, share, local


def test_fig7_design_space(benchmark):
    def regenerate():
        return [(label, *describe(design, channels))
                for label, design, channels in LAYOUTS]

    rows = benchmark.pedantic(regenerate, rounds=1, iterations=1)

    emit("")
    emit("=" * 72)
    emit("Figure 7: SDIMM-based designs")
    emit("=" * 72)
    for label, config, backend, share, local_levels in rows:
        boxes = "  ".join(f"[SDIMM {index}]"
                          for index in range(config.sdimm_count))
        emit(f"  {label:16s} {config.channels} channel(s)   {boxes}")
        emit(f"  {'':16s} {share}; local tree {local_levels} levels "
             f"(global {config.oram.levels})")
    emit("")

    by_label = {label: (config, backend, share, local)
                for label, config, backend, share, local in rows}
    # structural invariants of the figure
    assert by_label["(a) INDEP-2"][0].sdimm_count == 2
    assert by_label["(c) INDEP-4"][0].sdimm_count == 4
    # independent designs shrink the local tree by log2(N) levels
    config, backend, _, local = by_label["(c) INDEP-4"]
    assert local == config.oram.levels - 2
    # split designs keep the full tree depth on every SDIMM
    config, backend, _, local = by_label["(d) SPLIT-4"]
    assert local == config.oram.levels
    # the combined design halves the tree across groups only
    config, backend, _, local = by_label["(e) INDEP-SPLIT"]
    assert local == config.oram.levels - 1
