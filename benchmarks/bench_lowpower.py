"""Section III-E / IV-B low-power reproduction.

Paper: "we evaluate our low power technique and observe no more than 4%
performance drop as a result of higher bank conflicts" while keeping all
but one rank per SDIMM in low-power mode and localizing each access to a
single rank.
"""

import dataclasses

from repro.config import DesignPoint, table2_config
from repro.sim.stats import geometric_mean
from repro.sim.system import run_simulation

from _harness import TRACE_LENGTH, WORKLOADS, emit

SWEEP_WORKLOADS = tuple(WORKLOADS[:4])


def run_lowpower(workload, enabled):
    config = table2_config(DesignPoint.INDEP_2, channels=1)
    config = dataclasses.replace(
        config, sdimm=dataclasses.replace(config.sdimm,
                                          low_power_ranks=enabled))
    return run_simulation(config, workload, trace_length=TRACE_LENGTH)


def test_lowpower_performance_cost(benchmark):
    def sweep():
        ratios = {}
        residency = {}
        for workload in SWEEP_WORKLOADS:
            full_power = run_lowpower(workload, enabled=False)
            low_power = run_lowpower(workload, enabled=True)
            ratios[workload] = (low_power.execution_cycles /
                                full_power.execution_cycles)
            parked = sum(entry.get("power-down", 0)
                         for entry in low_power.rank_residencies)
            total = sum(sum(value for key, value in entry.items()
                            if key in ("active", "standby", "power-down",
                                       "self-refresh"))
                        for entry in low_power.rank_residencies)
            residency[workload] = parked / total if total else 0.0
        return ratios, residency

    ratios, residency = benchmark.pedantic(sweep, rounds=1, iterations=1)

    emit("")
    emit("=" * 72)
    emit("Low-power rank technique (INDEP-2): slowdown and residency")
    emit("=" * 72)
    emit(f"  {'workload':12s} {'slowdown':>9s} {'parked':>8s}")
    for workload in SWEEP_WORKLOADS:
        emit(f"  {workload:12s} {ratios[workload]:9.3f} "
             f"{residency[workload]:8.1%}")
    mean = geometric_mean(list(ratios.values()))
    emit(f"  {'geomean':12s} {mean:9.3f}")
    emit("  (paper: no more than 4% performance drop)")

    assert mean < 1.06, "low-power cost must stay in the few-percent range"
    assert all(value > 0.4 for value in residency.values()), \
        "most rank-time must be spent powered down"
