"""Section IV-B latency reproduction.

Paper: "For the 2-channel case, the Split and Indep-Split models reduce
memory access latency, relative to Freecursive, by 41% and 63%
respectively."
"""

from repro.config import DesignPoint
from repro.sim.stats import geometric_mean

from _harness import WORKLOADS, emit, print_header, run_cached

DESIGNS = (DesignPoint.SPLIT_4, DesignPoint.INDEP_SPLIT)


def test_latency_reduction(benchmark):
    def sweep():
        rows = {}
        for workload in WORKLOADS:
            baseline = run_cached(DesignPoint.FREECURSIVE, workload, 2)
            rows[workload] = [
                run_cached(design, workload, 2).miss_latency.mean /
                max(1.0, baseline.miss_latency.mean)
                for design in DESIGNS
            ]
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header("Miss latency relative to Freecursive (2 channels)",
                 [design.value[:7] for design in DESIGNS])
    for workload, values in sorted(rows.items()):
        cells = " ".join(f"{value:7.3f}" for value in values)
        emit(f"  {workload:12s} {cells}")
    means = [geometric_mean([rows[w][index] for w in rows])
             for index in range(len(DESIGNS))]
    emit(f"  {'geomean':12s} " +
         " ".join(f"{mean:7.3f}" for mean in means))
    emit("  (paper: SPLIT -41%, INDEP-SPLIT -63% => 0.59 / 0.37)")

    split_mean, combined_mean = means
    assert split_mean < 0.95, "Split must reduce latency"
    assert combined_mean < split_mean, \
        "INDEP-SPLIT must reduce latency further"
