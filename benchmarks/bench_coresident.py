"""Extension experiment: non-secure VM latency next to each design.

The paper claims (Section III-A.3) that an SDIMM "does not negatively
impact the bandwidth available to a co-resident VM" and notes (Section
IV-B) that the freed channel lowers latency for non-secure threads —
"not evaluated in this study".  This bench evaluates it.
"""

from repro.config import DesignPoint
from repro.sim.coresident import CoResidentExperiment

from _harness import emit

DESIGNS = (DesignPoint.NONSECURE, DesignPoint.FREECURSIVE,
           DesignPoint.SPLIT_2, DesignPoint.INDEP_2)


def test_coresident_vm_latency(benchmark):
    def sweep():
        results = {}
        for design in DESIGNS:
            experiment = CoResidentExperiment(design)
            results[design] = experiment.run(oram_requests=120,
                                             vm_requests=120)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    floor = results[DesignPoint.NONSECURE].mean_latency
    emit("")
    emit("=" * 72)
    emit("Co-resident VM read latency under secure-design load "
         "(extension)")
    emit("=" * 72)
    emit(f"  {'design under load':18s} {'VM latency':>11s} {'vs idle':>9s}")
    for design in DESIGNS:
        mean = results[design].mean_latency
        emit(f"  {design.value:18s} {mean:11.0f} {mean / floor:9.1f}x")
    emit("  (paper claim: SDIMMs leave co-resident traffic nearly "
         "unharmed — not evaluated there)")

    assert results[DesignPoint.INDEP_2].mean_latency < \
        0.5 * results[DesignPoint.FREECURSIVE].mean_latency
