"""Figure 11 reproduction: sensitivity to the number of ORAM layers.

Paper: "adding more layers increases the improvements of our designs ...
the improvement ranges from 33% to 35% for the single channel memory and
47% to 49% for the double channel memory" (SPLIT-2 at 1ch, INDEP-SPLIT at
2ch, sweeping tree depth; slightly larger gains without ORAM caching).
"""

import dataclasses

import pytest

from repro.config import DesignPoint, table2_config
from repro.sim.stats import geometric_mean
from repro.sim.system import run_simulation

from _harness import TRACE_LENGTH, WORKLOADS, emit, print_header

LAYER_SWEEP = (24, 26, 28, 30)
#: depth sweeps re-simulate everything, so use a subset of workloads
SWEEP_WORKLOADS = tuple(WORKLOADS[:3])


def run_with_levels(design, channels, levels, workload):
    config = table2_config(design, channels=channels)
    config = dataclasses.replace(config,
                                 oram=config.oram.with_levels(levels))
    config.validate()
    return run_simulation(config, workload, trace_length=TRACE_LENGTH)


@pytest.mark.parametrize("channels,design", [
    (1, DesignPoint.SPLIT_2),
    (2, DesignPoint.INDEP_SPLIT),
])
def test_fig11_layer_sensitivity(benchmark, channels, design):
    def sweep():
        averages = {}
        for levels in LAYER_SWEEP:
            normalized = []
            for workload in SWEEP_WORKLOADS:
                baseline = run_with_levels(DesignPoint.FREECURSIVE,
                                           channels, levels, workload)
                sdimm = run_with_levels(design, channels, levels, workload)
                normalized.append(sdimm.normalized_time(baseline))
            averages[levels] = geometric_mean(normalized)
        return averages

    averages = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header(f"Figure 11 ({channels}-channel, {design.value}): "
                 f"normalized time vs ORAM layers",
                 [f"L{levels}" for levels in LAYER_SWEEP])
    emit("  " + "average".ljust(12) + " " +
         " ".join(f"{averages[levels]:6.3f}" for levels in LAYER_SWEEP))
    emit("  (paper: improvements grow with depth; 33-35% at 1ch, "
         "47-49% at 2ch)")

    # shape: the SDIMM advantage must not shrink as the tree deepens
    assert averages[LAYER_SWEEP[-1]] <= averages[LAYER_SWEEP[0]] + 0.02
    assert all(value < 1.0 for value in averages.values())
