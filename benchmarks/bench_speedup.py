"""Serial-vs-parallel sweep throughput + hot-path speedup, recorded to
``BENCH_pr3.json``.

Two measurements, both honest about the machine they ran on
(``cpu_count`` is in the record):

1. **Sweep throughput** — the same point set through
   :func:`repro.parallel.run_sweep` with ``jobs=1`` and ``jobs=N``
   (cache disabled for both).  The script *fails* (exit 1) if any
   parallel result diverges from its serial twin — this is the CI
   perf-smoke divergence gate.
2. **Hot path** — one fixed single-run scenario timed in two fresh
   subprocesses: the *reference* core (``REPRO_REFERENCE_CORE=1`` +
   ``REPRO_DISABLE_MEMO=1``: closure-based event scheduling, the
   helper-per-constraint ``schedule_run``, bank-scanning residency
   tracking, memo caches off) against the optimized default.  Cycle
   counts must match exactly; the wall-clock delta is the measured
   single-run speedup of the hot-path work.

Run directly::

    python benchmarks/bench_speedup.py --trace-length 1200 --jobs 4

Under pytest (tier-2 benchmark suite) the module contributes one smoke
test that runs a miniature version of the same flow.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
if SRC not in sys.path:
    sys.path.insert(0, SRC)

from repro.config import DesignPoint  # noqa: E402
from repro.parallel import (SweepPoint, code_fingerprint,  # noqa: E402
                            run_result_to_dict, run_sweep)

DEFAULT_OUT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results", "BENCH_pr3.json")

#: Designs x workloads of the measured sweep (8 points: enough to keep a
#: small pool busy, small enough for a CI smoke run).
SWEEP_DESIGNS = (DesignPoint.FREECURSIVE, DesignPoint.INDEP_2)
SWEEP_WORKLOADS = ("mcf", "gromacs", "libquantum", "lbm")

_HOTPATH_SNIPPET = """\
import time
from repro.config import table2_config, DesignPoint
from repro.sim.system import run_simulation
best = None
cycles = None
for _ in range({repeats}):
    start = time.perf_counter()
    result = run_simulation(table2_config(DesignPoint.{design}, channels=1),
                            {workload!r}, trace_length={trace_length})
    elapsed = time.perf_counter() - start
    assert cycles in (None, result.execution_cycles)
    cycles = result.execution_cycles
    if best is None or elapsed < best:
        best = elapsed
print(cycles, best)
"""


def sweep_points(trace_length: int) -> List[SweepPoint]:
    return [SweepPoint(design, workload, trace_length=trace_length)
            for design in SWEEP_DESIGNS
            for workload in SWEEP_WORKLOADS]


def measure_sweep(points: List[SweepPoint], jobs: int) -> Dict[str, object]:
    start = time.perf_counter()
    outcome = run_sweep(points, jobs=jobs, cache=None)
    elapsed = time.perf_counter() - start
    return {
        "jobs": jobs,
        "wall_s": elapsed,
        "results": [run_result_to_dict(entry.result)
                    for entry in outcome.results],
    }


def measure_hotpath_run(trace_length: int, reference: bool,
                        design: str = "FREECURSIVE",
                        workload: str = "mcf",
                        repeats: int = 3) -> Dict[str, object]:
    """Best-of-``repeats`` simulation time in one fresh subprocess.

    The core toggles are read at import, so each variant needs its own
    interpreter; repeating the run *inside* the process and taking the
    minimum damps scheduler noise without re-paying import time.
    """
    code = _HOTPATH_SNIPPET.format(design=design, workload=workload,
                                   trace_length=trace_length,
                                   repeats=repeats)
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_REFERENCE_CORE"] = "1" if reference else ""
    env["REPRO_DISABLE_MEMO"] = "1" if reference else ""
    output = subprocess.run([sys.executable, "-c", code], env=env,
                            capture_output=True, text=True, check=True)
    cycles, elapsed = output.stdout.split()
    return {"cycles": int(cycles), "wall_s": float(elapsed),
            "reference": reference}


def run_benchmark(trace_length: int, jobs: int,
                  out_path: Optional[str]) -> Dict[str, object]:
    """The full measurement; returns the record written to ``out_path``."""
    points = sweep_points(trace_length)
    serial = measure_sweep(points, jobs=1)
    parallel = measure_sweep(points, jobs=jobs)
    identical = serial["results"] == parallel["results"]

    # Hot-path A/B: two interleaved subprocesses per variant, three runs
    # inside each, keep the per-variant minimum — interleaving keeps slow
    # machine phases from landing entirely on one variant.
    samples: Dict[bool, List[Dict[str, object]]] = {True: [], False: []}
    for _ in range(2):
        for variant in (True, False):
            samples[variant].append(
                measure_hotpath_run(trace_length, reference=variant))
    reference = min(samples[True], key=lambda r: r["wall_s"])
    optimized = min(samples[False], key=lambda r: r["wall_s"])
    hotpath_identical = reference["cycles"] == optimized["cycles"]

    record = {
        "schema": 1,
        "benchmark": "pr3-parallel-sweep-and-hotpath",
        "cpu_count": multiprocessing.cpu_count(),
        "trace_length": trace_length,
        "code_fingerprint": code_fingerprint(),
        "sweep": {
            "points": len(points),
            "designs": [design.value for design in SWEEP_DESIGNS],
            "workloads": list(SWEEP_WORKLOADS),
            "serial_wall_s": serial["wall_s"],
            "parallel_wall_s": parallel["wall_s"],
            "parallel_jobs": jobs,
            "speedup": serial["wall_s"] / parallel["wall_s"]
            if parallel["wall_s"] else 0.0,
            "results_identical": identical,
        },
        "hotpath": {
            "design": "freecursive",
            "workload": "mcf",
            "reference_wall_s": reference["wall_s"],
            "optimized_wall_s": optimized["wall_s"],
            "speedup": reference["wall_s"] / optimized["wall_s"]
            if optimized["wall_s"] else 0.0,
            "cycles": optimized["cycles"],
            "cycles_identical": hotpath_identical,
        },
    }
    if out_path:
        os.makedirs(os.path.dirname(os.path.abspath(out_path)),
                    exist_ok=True)
        with open(out_path, "w") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="serial-vs-parallel sweep + hot-path speedup benchmark")
    parser.add_argument("--trace-length", type=int, default=1200)
    parser.add_argument("--jobs", type=int,
                        default=min(4, max(2, multiprocessing.cpu_count())))
    parser.add_argument("--out", default=DEFAULT_OUT, metavar="FILE",
                        help=f"JSON record path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)

    record = run_benchmark(args.trace_length, args.jobs, args.out)
    sweep = record["sweep"]
    hotpath = record["hotpath"]
    print(f"cpu_count            {record['cpu_count']}")
    print(f"sweep points         {sweep['points']}")
    print(f"serial wall          {sweep['serial_wall_s']:.2f} s")
    print(f"parallel wall (x{sweep['parallel_jobs']})   "
          f"{sweep['parallel_wall_s']:.2f} s")
    print(f"sweep speedup        {sweep['speedup']:.2f}x")
    print(f"hot-path reference   {hotpath['reference_wall_s']:.2f} s")
    print(f"hot-path optimized   {hotpath['optimized_wall_s']:.2f} s")
    print(f"hot-path speedup     {hotpath['speedup']:.2f}x")
    print(f"wrote {args.out}")
    if not sweep["results_identical"]:
        print("FAIL: parallel sweep diverged from serial", file=sys.stderr)
        return 1
    if not hotpath["cycles_identical"]:
        print("FAIL: hot-path work changed simulated cycles", file=sys.stderr)
        return 1
    return 0


# ----------------------------------------------------------------------
# pytest smoke hook (tier-2): tiny version of the same flow
# ----------------------------------------------------------------------

def test_parallel_sweep_matches_serial_smoke():
    points = [SweepPoint(DesignPoint.NONSECURE, "mcf", trace_length=600),
              SweepPoint(DesignPoint.INDEP_2, "mcf", trace_length=600)]
    serial = run_sweep(points, jobs=1)
    parallel = run_sweep(points, jobs=2)
    assert ([run_result_to_dict(e.result) for e in serial.results] ==
            [run_result_to_dict(e.result) for e in parallel.results])


if __name__ == "__main__":
    sys.exit(main())
