"""Section IV-B traffic reproduction: off-DIMM accesses vs the baseline.

Paper: "For a 28-layer ORAM system with 7-layer ORAM caching, INDEP-2 and
INDEP-4 reduce the number of off-DIMM accesses to 4.2% and 7.8% of the
baseline ORAM, including PROBE access overheads ... These overheads drop
to less than 3.2% when ORAM caching is not used.  For the Split
architecture, the off-DIMM accesses are reduced to 12%."

Both the analytic model and the simulator's measured bus traffic are
reported.
"""

from repro.analysis.traffic import (
    baseline_lines_per_access,
    independent_traffic,
    split_traffic,
)
from repro.config import DesignPoint, OramConfig, SdimmConfig

from _harness import WORKLOADS, emit, run_cached

ORAM = OramConfig(levels=28, cached_levels=7)
SDIMM = SdimmConfig()


def test_analytic_offdimm_fractions(benchmark):
    def compute():
        return {
            "baseline lines/access": baseline_lines_per_access(ORAM, 7),
            "INDEP-2 (cached)": independent_traffic(ORAM, SDIMM, 2, 7)
            .fraction_of_baseline,
            "INDEP-4 (cached)": independent_traffic(ORAM, SDIMM, 4, 7)
            .fraction_of_baseline,
            "INDEP-2 (no cache)": independent_traffic(ORAM, SDIMM, 2, 0)
            .fraction_of_baseline,
            "SPLIT (cached)": split_traffic(ORAM, 2, 7)
            .fraction_of_baseline,
        }

    table = benchmark.pedantic(compute, rounds=1, iterations=1)

    emit("")
    emit("=" * 72)
    emit("Off-DIMM traffic model (28 layers, 7 cached)")
    emit("=" * 72)
    paper = {
        "baseline lines/access": "2(Z+1)L = 210",
        "INDEP-2 (cached)": "4.2%",
        "INDEP-4 (cached)": "7.8%",
        "INDEP-2 (no cache)": "<3.2%",
        "SPLIT (cached)": "12%",
    }
    for key, value in table.items():
        shown = f"{value:.1%}" if value < 1 else f"{value}"
        emit(f"  {key:24s} {shown:>8s}   (paper: {paper[key]})")

    assert table["baseline lines/access"] == 210
    assert 0.02 < table["INDEP-2 (cached)"] < 0.08
    assert table["INDEP-2 (no cache)"] < table["INDEP-2 (cached)"]
    assert 0.08 < table["SPLIT (cached)"] < 0.18
    assert table["INDEP-2 (cached)"] < table["SPLIT (cached)"]


def test_measured_channel_traffic(benchmark):
    """Cross-check with the simulator: lines crossing the main channel."""
    workload = WORKLOADS[0]

    def compute():
        freecursive = run_cached(DesignPoint.FREECURSIVE, workload, 1)
        independent = run_cached(DesignPoint.INDEP_2, workload, 1)
        split = run_cached(DesignPoint.SPLIT_2, workload, 1)
        fc_lines = sum(counters["reads"] + counters["writes"]
                       for counters in freecursive.channel_counters)
        fc_per_op = fc_lines / max(1, freecursive.accessoram_count)
        indep_per_op = (independent.main_bus_lines /
                        max(1, independent.accessoram_count))
        split_per_op = (split.main_bus_lines /
                        max(1, split.accessoram_count))
        return fc_per_op, indep_per_op, split_per_op

    fc_per_op, indep_per_op, split_per_op = benchmark.pedantic(
        compute, rounds=1, iterations=1)

    emit("")
    emit(f"  measured main-channel lines per accessORAM ({workload}):")
    emit(f"    freecursive {fc_per_op:7.1f}")
    emit(f"    indep-2     {indep_per_op:7.1f}  "
         f"({indep_per_op / fc_per_op:.1%} of baseline)")
    emit(f"    split-2     {split_per_op:7.1f}  "
         f"({split_per_op / fc_per_op:.1%} of baseline)")

    assert indep_per_op < 0.12 * fc_per_op
    assert split_per_op < 0.35 * fc_per_op
    assert indep_per_op < split_per_op
