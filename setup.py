"""Setup shim: lets `pip install -e .` work offline without the wheel package."""

from setuptools import setup

setup()
